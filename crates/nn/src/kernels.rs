//! Lane-vectorized, optionally row-parallel compute kernels, plus
//! packed-weight layouts and the fused row kernels used by the serving
//! executor.
//!
//! # The bit-identity contract
//!
//! Every kernel in this module preserves one invariant: **each output
//! element accumulates its inner products with a single accumulator in
//! ascending-`k` order**. Vectorization happens only *across independent
//! output lanes* (8 output columns at a time, each with its own
//! accumulator), never across the reduction dimension — so no partial
//! sums are ever reassociated and the result is bit-identical to the
//! naive scalar loop, to the pre-existing k-blocked kernel, and to every
//! other variant here (packed or unpacked, fused or composed, 1 thread
//! or N). That is what lets training (tape) and serving (tape-free,
//! packed, multicore) share numerics exactly; the kernel-parity
//! proptests assert equality down to the byte.
//!
//! Row-parallel drivers split the output rows into contiguous per-thread
//! ranges on the persistent [`KernelPool`]; a row is always computed
//! entirely by one thread, so thread count cannot affect values.
//!
//! # Why lanes beat the old kernel
//!
//! The previous k-blocked loop carried a per-element `a == 0.0` branch
//! (a leftover sparse-input optimization) that defeated autovectorization
//! on the dense panels every encoder matmul feeds it. The lane kernels
//! are branch-free with fixed-width `[f32; 8]` accumulators, which LLVM
//! lowers to SIMD adds/multiplies on any x86-64 / aarch64 baseline, and
//! the transpose-free [`matmul_bt_into`] runs 8 independent dot-product
//! chains per output row where the old code ran one latency-bound chain.

use crate::matrix::Matrix;
use crate::pool::KernelPool;
use crate::tape::{gelu_f, sigmoid_f};

/// Output-lane width of the vectorized kernels. Accumulators are
/// `[f32; LANES]` blocks that LLVM keeps in vector registers.
pub const LANES: usize = 8;

/// Below this many multiply-adds (`2·m·k·n`), a matmul is dispatched
/// single-threaded regardless of the configured thread count — the
/// dispatch latency would exceed the kernel time.
pub const PAR_MIN_FLOPS: usize = 1 << 16;

/// Elementwise activation applied by the fused linear kernels. The
/// scalar functions are the exact ones the composed ops use, so fusing
/// changes no values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Act {
    /// No activation.
    #[default]
    Ident,
    /// Rectified linear unit.
    Relu,
    /// GELU (tanh approximation, as BERT uses).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Act {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Act::Ident => v,
            Act::Relu => v.max(0.0),
            Act::Gelu => gelu_f(v),
            Act::Sigmoid => sigmoid_f(v),
            Act::Tanh => v.tanh(),
        }
    }
}

/// A raw pointer to an output matrix that worker threads write disjoint
/// rows of. Safe to share because every parallel driver hands each
/// thread a disjoint row range and waits for all threads before the
/// borrow ends.
#[derive(Clone, Copy)]
struct RowsOut {
    ptr: *mut f32,
    cols: usize,
}

unsafe impl Send for RowsOut {}
unsafe impl Sync for RowsOut {}

impl RowsOut {
    fn new(m: &mut Matrix) -> RowsOut {
        RowsOut { ptr: m.as_mut_slice().as_mut_ptr(), cols: m.cols() }
    }

    /// # Safety
    /// `r` must be in range and no other thread may hold this row.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row(&self, r: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.cols), self.cols)
    }
}

fn effective_threads(threads: usize, rows: usize, flops: usize) -> usize {
    if threads <= 1 || rows < 2 || flops < PAR_MIN_FLOPS {
        1
    } else {
        threads.min(rows)
    }
}

fn run_row_ranges(threads: usize, rows: usize, flops: usize, f: &(dyn Fn(usize, usize) + Sync)) {
    let t = effective_threads(threads, rows, flops);
    if t <= 1 {
        f(0, rows);
    } else {
        KernelPool::global().run_rows(t, rows, f);
    }
}

// ---- plain matmul (out = A @ B) --------------------------------------------

/// Lane kernel over a row range: `out[r0..r1] = A[r0..r1] @ B`.
/// Panel-outer, row-inner: the `[k, 8]` column panel of `B` stays hot in
/// cache across all rows of the range.
fn matmul_rows(a: &Matrix, b: &Matrix, out: RowsOut, r0: usize, r1: usize) {
    let n = b.cols();
    if n == 0 {
        return;
    }
    let bd = b.as_slice();
    let mut j0 = 0;
    // Lane pairs first: 16 output columns per pass with two independent
    // accumulator arrays, doubling instruction-level parallelism over a
    // single 8-wide chain. Each column still owns one accumulator
    // summing in ascending-`k` order, so pairing changes nothing
    // bitwise.
    while j0 + 2 * LANES <= n {
        for i in r0..r1 {
            let a_row = a.row_slice(i);
            let mut acc0 = [0.0f32; LANES];
            let mut acc1 = [0.0f32; LANES];
            for (&av, brow) in a_row.iter().zip(bd.chunks_exact(n)) {
                let b0: &[f32; LANES] = brow[j0..j0 + LANES].try_into().expect("lane width");
                let b1: &[f32; LANES] = brow[j0 + LANES..j0 + 2 * LANES].try_into().expect("lane width");
                for (o, &bv) in acc0.iter_mut().zip(b0) {
                    *o += av * bv;
                }
                for (o, &bv) in acc1.iter_mut().zip(b1) {
                    *o += av * bv;
                }
            }
            // SAFETY: rows in [r0, r1) belong exclusively to this call.
            let dst = unsafe { out.row(i) };
            dst[j0..j0 + LANES].copy_from_slice(&acc0);
            dst[j0 + LANES..j0 + 2 * LANES].copy_from_slice(&acc1);
        }
        j0 += 2 * LANES;
    }
    while j0 < n {
        let w = LANES.min(n - j0);
        if w == LANES {
            for i in r0..r1 {
                let a_row = a.row_slice(i);
                let mut acc = [0.0f32; LANES];
                for (&av, brow) in a_row.iter().zip(bd.chunks_exact(n)) {
                    let b8: &[f32; LANES] = brow[j0..j0 + LANES].try_into().expect("lane width");
                    for (o, &bv) in acc.iter_mut().zip(b8) {
                        *o += av * bv;
                    }
                }
                // SAFETY: rows in [r0, r1) belong exclusively to this call.
                let dst = unsafe { out.row(i) };
                dst[j0..j0 + LANES].copy_from_slice(&acc);
            }
        } else {
            for i in r0..r1 {
                let a_row = a.row_slice(i);
                let mut acc = [0.0f32; LANES];
                for (&av, brow) in a_row.iter().zip(bd.chunks_exact(n)) {
                    for (o, &bv) in acc.iter_mut().zip(&brow[j0..j0 + w]) {
                        *o += av * bv;
                    }
                }
                // SAFETY: rows in [r0, r1) belong exclusively to this call.
                let dst = unsafe { out.row(i) };
                dst[j0..j0 + w].copy_from_slice(&acc[..w]);
            }
        }
        j0 += w;
    }
}

/// `out = a @ b`, fully overwriting `out`, with row-parallel execution on
/// up to `threads` threads when the shape clears the size gate. Results
/// are bit-identical for every thread count.
///
/// # Panics
/// Panics on inner-dimension mismatch or when `out` is not
/// `[a.rows, b.cols]`.
pub fn matmul_into_mt(a: &Matrix, b: &Matrix, threads: usize, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul {}x{} @ {}x{}", a.rows(), a.cols(), b.rows(), b.cols());
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul_into output shape");
    let flops = 2 * a.rows() * a.cols() * b.cols();
    let mo = RowsOut::new(out);
    run_row_ranges(threads, a.rows(), flops, &|r0, r1| matmul_rows(a, b, mo, r0, r1));
}

// ---- transpose-free matmuls ------------------------------------------------

/// Lane kernel over a row range: `out[r0..r1] = A[r0..r1] @ B^T` without
/// materializing the transpose. Eight independent dot-product chains run
/// per output row (one accumulator per B row), each still summing in
/// ascending-`k` order.
fn matmul_bt_rows(a: &Matrix, b: &Matrix, out: RowsOut, r0: usize, r1: usize) {
    let nout = b.rows();
    for i in r0..r1 {
        let a_row = a.row_slice(i);
        // SAFETY: rows in [r0, r1) belong exclusively to this call.
        let dst = unsafe { out.row(i) };
        let mut j = 0;
        while j < nout {
            let w = LANES.min(nout - j);
            let mut acc = [0.0f32; LANES];
            if w == LANES {
                let br: [&[f32]; LANES] = std::array::from_fn(|l| b.row_slice(j + l));
                for (kk, &av) in a_row.iter().enumerate() {
                    for (o, brow) in acc.iter_mut().zip(&br) {
                        // SAFETY: kk < a.cols() == b.cols() == brow.len().
                        *o += av * unsafe { *brow.get_unchecked(kk) };
                    }
                }
            } else {
                for (l, o) in acc.iter_mut().enumerate().take(w) {
                    let mut s = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b.row_slice(j + l)) {
                        s += x * y;
                    }
                    *o = s;
                }
            }
            dst[j..j + w].copy_from_slice(&acc[..w]);
            j += w;
        }
    }
}

/// `out = a @ b^T`, fully overwriting `out`, optionally row-parallel.
///
/// # Panics
/// Panics when the shared dimensions mismatch or `out` is not
/// `[a.rows, b.rows]`.
pub fn matmul_bt_into_mt(a: &Matrix, b: &Matrix, threads: usize, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_bt {}x{} @ ({}x{})^T",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(out.shape(), (a.rows(), b.rows()), "matmul_bt_into output shape");
    let flops = 2 * a.rows() * a.cols() * b.rows();
    let mo = RowsOut::new(out);
    run_row_ranges(threads, a.rows(), flops, &|r0, r1| matmul_bt_rows(a, b, mo, r0, r1));
}

/// `out = a^T @ b`, fully overwriting `out`, without materializing the
/// transpose. Single-threaded: the `k`-outer loop this kernel needs for
/// its ascending-`k` order makes output rows non-local per thread, and
/// its only hot caller is the tape backward pass, which is
/// single-threaded by design.
///
/// # Panics
/// Panics when the shared dimensions mismatch or `out` is not
/// `[a.cols, b.cols]`.
pub fn matmul_at_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at ({}x{})^T @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(out.shape(), (a.cols(), b.cols()), "matmul_at_into output shape");
    out.fill_zero();
    for kk in 0..a.rows() {
        let a_row = a.row_slice(kk);
        let b_row = b.row_slice(kk);
        for (i, &av) in a_row.iter().enumerate() {
            axpy_lanes(out.row_slice_mut(i), av, b_row);
        }
    }
}

/// `dst += a * src`, in 8-wide lanes (branch-free saxpy).
#[inline]
fn axpy_lanes(dst: &mut [f32], a: f32, src: &[f32]) {
    let mut dc = dst.chunks_exact_mut(LANES);
    let mut sc = src.chunks_exact(LANES);
    for (d8, s8) in (&mut dc).zip(&mut sc) {
        for (o, &sv) in d8.iter_mut().zip(s8) {
            *o += a * sv;
        }
    }
    for (o, &sv) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *o += a * sv;
    }
}

// ---- packed right-hand sides -----------------------------------------------

/// A right-hand-side matrix repacked into column panels of [`LANES`]
/// columns: panel `p` holds `k × LANES` values laid out so the inner
/// matmul loop reads one contiguous 8-float block per `k` step instead of
/// striding across the row-major matrix. The last panel is zero-padded;
/// padded lanes accumulate garbage-free zeros that are never stored.
///
/// Serving weights are static, so the executor packs each weight matrix
/// once per worker and reuses the panels for every table (see the packed
/// cache on `InferExec`).
#[derive(Debug, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedB {
    /// Packs `b` into column panels.
    pub fn pack(b: &Matrix) -> PackedB {
        let (k, n) = b.shape();
        let panels = n.div_ceil(LANES);
        let mut data = vec![0.0f32; panels * k * LANES];
        let bd = b.as_slice();
        for p in 0..panels {
            let j0 = p * LANES;
            let w = LANES.min(n - j0);
            let panel = &mut data[p * k * LANES..(p + 1) * k * LANES];
            for (kk, brow) in bd.chunks_exact(n.max(1)).enumerate().take(k) {
                panel[kk * LANES..kk * LANES + w].copy_from_slice(&brow[j0..j0 + w]);
            }
        }
        PackedB { k, n, data }
    }

    /// Logical `(rows, cols)` of the packed matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Packed size in `f32` elements (incl. padding) — cache accounting.
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn panel(&self, p: usize) -> &[f32] {
        &self.data[p * self.k * LANES..(p + 1) * self.k * LANES]
    }
}

/// One output row against packed panels, with optional fused bias and
/// activation: `out_row = act(a_row @ B + bias)`. The accumulation is the
/// exact lane kernel of [`matmul_into_mt`]; bias is added to each
/// finished accumulator and the activation applied afterwards — the same
/// value sequence as the composed `matmul → add_row → act` ops.
fn packed_row(a_row: &[f32], pb: &PackedB, bias: Option<&[f32]>, act: Act, dst: &mut [f32]) {
    let n = pb.n;
    let mut p = 0;
    let mut j0 = 0;
    // Panel quads, then pairs: up to four independent accumulator
    // arrays fed in one pass over `a_row`, multiplying the
    // instruction-level parallelism of a single 8-wide FMA dependency
    // chain. Each output column still owns one accumulator summing in
    // ascending-`k` order, so grouping changes nothing bitwise.
    while j0 + 4 * LANES <= n {
        let (p0, p1) = (pb.panel(p), pb.panel(p + 1));
        let (p2, p3) = (pb.panel(p + 2), pb.panel(p + 3));
        let mut acc0 = [0.0f32; LANES];
        let mut acc1 = [0.0f32; LANES];
        let mut acc2 = [0.0f32; LANES];
        let mut acc3 = [0.0f32; LANES];
        for ((((&av, b0), b1), b2), b3) in a_row
            .iter()
            .zip(p0.chunks_exact(LANES))
            .zip(p1.chunks_exact(LANES))
            .zip(p2.chunks_exact(LANES))
            .zip(p3.chunks_exact(LANES))
        {
            for (o, &bv) in acc0.iter_mut().zip(b0) {
                *o += av * bv;
            }
            for (o, &bv) in acc1.iter_mut().zip(b1) {
                *o += av * bv;
            }
            for (o, &bv) in acc2.iter_mut().zip(b2) {
                *o += av * bv;
            }
            for (o, &bv) in acc3.iter_mut().zip(b3) {
                *o += av * bv;
            }
        }
        for (t, acc) in [acc0, acc1, acc2, acc3].iter().enumerate() {
            let c0 = j0 + t * LANES;
            finish_lane(acc, bias, act, c0, &mut dst[c0..c0 + LANES]);
        }
        j0 += 4 * LANES;
        p += 4;
    }
    while j0 + 2 * LANES <= n {
        let (p0, p1) = (pb.panel(p), pb.panel(p + 1));
        let mut acc0 = [0.0f32; LANES];
        let mut acc1 = [0.0f32; LANES];
        for ((&av, b0), b1) in a_row
            .iter()
            .zip(p0.chunks_exact(LANES))
            .zip(p1.chunks_exact(LANES))
        {
            for (o, &bv) in acc0.iter_mut().zip(b0) {
                *o += av * bv;
            }
            for (o, &bv) in acc1.iter_mut().zip(b1) {
                *o += av * bv;
            }
        }
        finish_lane(&acc0, bias, act, j0, &mut dst[j0..j0 + LANES]);
        finish_lane(&acc1, bias, act, j0 + LANES, &mut dst[j0 + LANES..j0 + 2 * LANES]);
        j0 += 2 * LANES;
        p += 2;
    }
    while j0 < n {
        let w = LANES.min(n - j0);
        let panel = pb.panel(p);
        let mut acc = [0.0f32; LANES];
        for (&av, b8) in a_row.iter().zip(panel.chunks_exact(LANES)) {
            for (o, &bv) in acc.iter_mut().zip(b8) {
                *o += av * bv;
            }
        }
        finish_lane(&acc[..w], bias, act, j0, &mut dst[j0..j0 + w]);
        j0 += w;
        p += 1;
    }
}

/// Epilogue for one finished accumulator lane: adds the bias slice at
/// column offset `j0` (when present) and applies the activation while
/// storing into `dst`.
#[inline]
fn finish_lane(acc: &[f32], bias: Option<&[f32]>, act: Act, j0: usize, dst: &mut [f32]) {
    let w = dst.len();
    match bias {
        Some(bs) => {
            for ((o, &a), &bv) in dst.iter_mut().zip(acc).zip(&bs[j0..j0 + w]) {
                *o = act.apply(a + bv);
            }
        }
        None => {
            for (o, &a) in dst.iter_mut().zip(acc) {
                *o = act.apply(a);
            }
        }
    }
}

/// `out = act(a @ packed + bias)`, fully overwriting `out`, optionally
/// row-parallel. `bias` must be a `[1, n]` row when present.
///
/// # Panics
/// Panics on shape mismatches.
pub fn matmul_packed_into(
    a: &Matrix,
    pb: &PackedB,
    bias: Option<&Matrix>,
    act: Act,
    threads: usize,
    out: &mut Matrix,
) {
    let (k, n) = pb.shape();
    assert_eq!(a.cols(), k, "packed matmul {}x{} @ {}x{}", a.rows(), a.cols(), k, n);
    assert_eq!(out.shape(), (a.rows(), n), "packed matmul output shape");
    let bias = bias.map(|b| {
        assert_eq!(b.shape(), (1, n), "fused bias must be [1, {n}]");
        b.as_slice()
    });
    let flops = 2 * a.rows() * k * n;
    let mo = RowsOut::new(out);
    run_row_ranges(threads, a.rows(), flops, &|r0, r1| {
        for i in r0..r1 {
            // SAFETY: rows in [r0, r1) belong exclusively to this range.
            packed_row(a.row_slice(i), pb, bias, act, unsafe { mo.row(i) });
        }
    });
}

// ---- fused block-diagonal attention ----------------------------------------

/// Block-diagonal multi-head attention over row-stacked sequences, in one
/// pass: for every sequence `b` and head `h`,
///
/// ```text
/// out[qb, h·dh..(h+1)·dh] = softmax(scale · Q[qb,h] @ K[kb,h]^T) @ V[kb,h]
/// ```
///
/// where `qb` / `kb` are sequence `b`'s row ranges of the projected
/// stacks. This replaces, per head, the composed
/// `slice_cols → slice_rows×3 → matmul_bt → softmax_rows_scaled → matmul
/// → vcat_all → hcat` chain — which materializes several full-stack
/// copies per layer — with strided reads of `q`/`k`/`v` and direct
/// writes into the head-merged output. No intermediate matrix is ever
/// allocated beyond one scores row.
///
/// Bit-identity: every score is one ascending-`c` accumulator chain
/// (exactly [`matmul_bt_into_mt`] on the sliced block), the scaled
/// softmax materializes `score · scale` per element before
/// [`softmax_row`] (exactly [`softmax_rows_scaled_into`]), and every
/// output element accumulates `attn[i,j] · v[j,c]` in ascending-`j`
/// order (exactly [`matmul_into_mt`] on the sliced block) — so the
/// result matches the composed ops byte for byte.
///
/// Parallelism is per sequence: a block's rows are written entirely by
/// one thread, so thread count cannot affect values.
///
/// # Panics
/// Panics when shapes, lengths, or `heads` disagree.
#[allow(clippy::too_many_arguments)]
pub fn attn_blocks_into(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    q_lens: &[usize],
    kv_lens: &[usize],
    heads: usize,
    scale: f32,
    threads: usize,
    out: &mut Matrix,
) {
    let dim = q.cols();
    assert!(heads > 0 && dim.is_multiple_of(heads), "heads {heads} must divide dim {dim}");
    assert_eq!(k.cols(), dim, "key width mismatch");
    assert_eq!(v.cols(), dim, "value width mismatch");
    assert_eq!(q_lens.len(), kv_lens.len(), "per-sequence length mismatch");
    let total_q: usize = q_lens.iter().sum();
    let total_kv: usize = kv_lens.iter().sum();
    assert_eq!(q.rows(), total_q, "query stack height mismatch");
    assert_eq!(k.rows(), total_kv, "key stack height mismatch");
    assert_eq!(v.rows(), total_kv, "value stack height mismatch");
    assert_eq!(out.shape(), (total_q, dim), "attn_blocks output shape");

    let dh = dim / heads;
    let nb = q_lens.len();
    let mut q_offs = Vec::with_capacity(nb);
    let mut kv_offs = Vec::with_capacity(nb);
    let (mut qo, mut ko) = (0usize, 0usize);
    for (&ql, &kl) in q_lens.iter().zip(kv_lens) {
        q_offs.push(qo);
        kv_offs.push(ko);
        qo += ql;
        ko += kl;
    }
    let flops: usize = q_lens.iter().zip(kv_lens).map(|(&ql, &kl)| 4 * ql * kl * dim).sum();
    let mo = RowsOut::new(out);
    run_row_ranges(threads, nb, flops, &|b0, b1| {
        let mut scores: Vec<f32> = Vec::new();
        for b in b0..b1 {
            let (qoff, ql) = (q_offs[b], q_lens[b]);
            let (koff, kl) = (kv_offs[b], kv_lens[b]);
            for h in 0..heads {
                let c0 = h * dh;
                for i in 0..ql {
                    let qrow = &q.row_slice(qoff + i)[c0..c0 + dh];
                    scores.clear();
                    scores.resize(kl, 0.0);
                    // Eight independent ascending-`c` chains per pass,
                    // one accumulator per key row — the matmul_bt lane
                    // kernel applied to the strided block.
                    let mut j = 0;
                    while j < kl {
                        let w = LANES.min(kl - j);
                        let mut acc = [0.0f32; LANES];
                        if w == LANES {
                            let kr: [&[f32]; LANES] =
                                std::array::from_fn(|l| &k.row_slice(koff + j + l)[c0..c0 + dh]);
                            for (c, &qv) in qrow.iter().enumerate() {
                                for (o, krow) in acc.iter_mut().zip(&kr) {
                                    // SAFETY: c < dh == krow.len().
                                    *o += qv * unsafe { *krow.get_unchecked(c) };
                                }
                            }
                        } else {
                            for (l, o) in acc.iter_mut().enumerate().take(w) {
                                let mut s = 0.0f32;
                                for (&x, &y) in qrow.iter().zip(&k.row_slice(koff + j + l)[c0..c0 + dh]) {
                                    s += x * y;
                                }
                                *o = s;
                            }
                        }
                        scores[j..j + w].copy_from_slice(&acc[..w]);
                        j += w;
                    }
                    for s in scores.iter_mut() {
                        *s *= scale;
                    }
                    softmax_row(&mut scores);
                    // SAFETY: block row ranges are disjoint and this
                    // block belongs exclusively to this thread.
                    let seg = &mut unsafe { mo.row(qoff + i) }[c0..c0 + dh];
                    seg.fill(0.0);
                    for (j, &aw) in scores.iter().enumerate() {
                        axpy_lanes(seg, aw, &v.row_slice(koff + j)[c0..c0 + dh]);
                    }
                }
            }
        }
    });
}

// ---- fused row kernels -----------------------------------------------------

/// Numerically-stabilized softmax of one row, in place. Shared by
/// [`Matrix::softmax_rows_inplace`] and the fused scaled variant so all
/// softmax paths produce identical values.
#[inline]
pub(crate) fn softmax_row(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Layer normalization of one row (no affine), in place. Shared by
/// [`Matrix::layer_norm_rows_inplace`] and the fused affine variant.
#[inline]
pub(crate) fn layer_norm_row(row: &mut [f32], eps: f32) {
    let n = row.len() as f32;
    let mean: f32 = row.iter().sum::<f32>() / n;
    let var: f32 = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for val in row.iter_mut() {
        *val = (*val - mean) * inv;
    }
}

/// `out = softmax_rows(alpha * x)` in one pass — the attention-score
/// kernel (`scale` + `softmax_rows`) without the intermediate buffer.
/// The scaled values are materialized per element before the softmax,
/// exactly as the composed ops would.
///
/// # Panics
/// Panics when `out` is not shaped like `x`.
pub fn softmax_rows_scaled_into(x: &Matrix, alpha: f32, out: &mut Matrix) {
    assert_eq!(out.shape(), x.shape(), "softmax_rows_scaled output shape");
    for r in 0..x.rows() {
        let dst = out.row_slice_mut(r);
        for (o, &v) in dst.iter_mut().zip(x.row_slice(r)) {
            *o = v * alpha;
        }
        softmax_row(dst);
    }
}

/// `out = layer_norm(x) * gain + bias` in one pass — the full LayerNorm
/// module (`layer_norm_rows` + `mul_row` + `add_row`) without two
/// intermediate buffers. `gain` and `bias` are `[1, n]` rows.
///
/// # Panics
/// Panics on shape mismatches.
pub fn layer_norm_affine_into(x: &Matrix, gain: &Matrix, bias: &Matrix, eps: f32, out: &mut Matrix) {
    assert_eq!(out.shape(), x.shape(), "layer_norm_affine output shape");
    assert_eq!(gain.shape(), (1, x.cols()), "layer_norm gain shape");
    assert_eq!(bias.shape(), (1, x.cols()), "layer_norm bias shape");
    let gs = gain.as_slice();
    let bs = bias.as_slice();
    for r in 0..x.rows() {
        let dst = out.row_slice_mut(r);
        dst.copy_from_slice(x.row_slice(r));
        layer_norm_row(dst, eps);
        for ((v, &g), &b) in dst.iter_mut().zip(gs).zip(bs) {
            let scaled = *v * g;
            *v = scaled + b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize) -> f32) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(f).collect())
    }

    fn wavy(rows: usize, cols: usize, phase: f32) -> Matrix {
        mat(rows, cols, |i| (i as f32 * 0.37 + phase).sin())
    }

    #[test]
    fn lane_matmul_matches_reference_on_awkward_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 16, 9), (13, 100, 21), (2, 64, 8)] {
            let a = wavy(m, k, 0.0);
            let b = wavy(k, n, 1.0);
            let mut out = Matrix::zeros(m, n);
            matmul_into_mt(&a, &b, 1, &mut out);
            // Reference: naive i-j-k with a single ascending-k accumulator.
            let mut reference = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut s = 0.0f32;
                    for kk in 0..k {
                        s += a.get(i, kk) * b.get(kk, j);
                    }
                    reference.set(i, j, s);
                }
            }
            assert_eq!(out.as_slice(), reference.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn threaded_matmul_is_bit_identical_to_single_thread() {
        // Big enough to clear the parallel gate.
        let a = wavy(64, 48, 0.2);
        let b = wavy(48, 40, 0.7);
        let mut single = Matrix::zeros(64, 40);
        matmul_into_mt(&a, &b, 1, &mut single);
        for threads in [2, 3, 4, 8] {
            let mut multi = Matrix::zeros(64, 40);
            matmul_into_mt(&a, &b, threads, &mut multi);
            assert_eq!(multi.as_slice(), single.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn packed_matmul_matches_unpacked_bitwise() {
        for &(m, k, n) in &[(5, 12, 16), (7, 33, 19), (1, 8, 3), (16, 64, 64)] {
            let a = wavy(m, k, 0.1);
            let b = wavy(k, n, 0.9);
            let pb = PackedB::pack(&b);
            assert_eq!(pb.shape(), (k, n));
            let mut plain = Matrix::zeros(m, n);
            matmul_into_mt(&a, &b, 1, &mut plain);
            let mut packed = Matrix::zeros(m, n);
            matmul_packed_into(&a, &pb, None, Act::Ident, 1, &mut packed);
            assert_eq!(packed.as_slice(), plain.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn fused_bias_act_matches_composed_ops_bitwise() {
        let a = wavy(6, 20, 0.0);
        let b = wavy(20, 11, 2.0);
        let bias = wavy(1, 11, 3.0);
        let pb = PackedB::pack(&b);
        for act in [Act::Ident, Act::Relu, Act::Gelu, Act::Sigmoid, Act::Tanh] {
            let mut fused = Matrix::zeros(6, 11);
            matmul_packed_into(&a, &pb, Some(&bias), act, 1, &mut fused);
            // Composed: matmul, then add_row, then the activation map.
            let mut composed = a.matmul(&b);
            for r in 0..composed.rows() {
                for (o, &bv) in composed.row_slice_mut(r).iter_mut().zip(bias.as_slice()) {
                    *o += bv;
                }
            }
            let composed = composed.map(|v| act.apply(v));
            assert_eq!(fused.as_slice(), composed.as_slice(), "{act:?}");
        }
    }

    #[test]
    fn fused_row_kernels_match_composed_ops_bitwise() {
        let x = wavy(5, 13, 0.4);
        let alpha = 0.35f32;
        let mut fused = Matrix::zeros(5, 13);
        softmax_rows_scaled_into(&x, alpha, &mut fused);
        let mut composed = x.map(|v| v * alpha);
        composed.softmax_rows_inplace();
        assert_eq!(fused.as_slice(), composed.as_slice());

        let gain = wavy(1, 13, 1.1);
        let bias = wavy(1, 13, 2.2);
        let mut ln = Matrix::zeros(5, 13);
        layer_norm_affine_into(&x, &gain, &bias, 1e-5, &mut ln);
        let mut want = x.clone();
        want.layer_norm_rows_inplace(1e-5);
        for r in 0..want.rows() {
            for ((v, &g), &b) in want.row_slice_mut(r).iter_mut().zip(gain.as_slice()).zip(bias.as_slice()) {
                let scaled = *v * g;
                *v = scaled + b;
            }
        }
        assert_eq!(ln.as_slice(), want.as_slice());
    }

    #[test]
    fn attn_blocks_matches_composed_ops_bitwise() {
        let heads = 2;
        let dim = 16;
        let dh = dim / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        // The third block alone clears PAR_MIN_FLOPS, so the threaded
        // runs below genuinely exercise the pool path.
        let q_lens = [3usize, 1, 40, 9];
        let kv_lens = [4usize, 7, 30, 9];
        let tq: usize = q_lens.iter().sum();
        let tk: usize = kv_lens.iter().sum();
        let q = wavy(tq, dim, 0.3);
        let k = wavy(tk, dim, 1.3);
        let v = wavy(tk, dim, 2.3);

        // Composed reference: per head, slice the blocks out, run the
        // standalone kernels, and merge heads into the output layout.
        let mut want = Matrix::zeros(tq, dim);
        for h in 0..heads {
            let c0 = h * dh;
            let (mut qo, mut ko) = (0usize, 0usize);
            for (&ql, &kl) in q_lens.iter().zip(&kv_lens) {
                let slice_block = |m: &Matrix, r0: usize, rows: usize| {
                    let mut s = Matrix::zeros(rows, dh);
                    for r in 0..rows {
                        s.row_slice_mut(r).copy_from_slice(&m.row_slice(r0 + r)[c0..c0 + dh]);
                    }
                    s
                };
                let qb = slice_block(&q, qo, ql);
                let kb = slice_block(&k, ko, kl);
                let vb = slice_block(&v, ko, kl);
                let mut raw = Matrix::zeros(ql, kl);
                matmul_bt_into_mt(&qb, &kb, 1, &mut raw);
                let mut attn = Matrix::zeros(ql, kl);
                softmax_rows_scaled_into(&raw, scale, &mut attn);
                let mut ob = Matrix::zeros(ql, dh);
                matmul_into_mt(&attn, &vb, 1, &mut ob);
                for r in 0..ql {
                    want.row_slice_mut(qo + r)[c0..c0 + dh].copy_from_slice(ob.row_slice(r));
                }
                qo += ql;
                ko += kl;
            }
        }

        for threads in [1, 3] {
            let mut got = Matrix::zeros(tq, dim);
            attn_blocks_into(&q, &k, &v, &q_lens, &kv_lens, heads, scale, threads, &mut got);
            assert_eq!(got.as_slice(), want.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn effective_threads_gates_small_work() {
        assert_eq!(effective_threads(4, 1, usize::MAX), 1);
        assert_eq!(effective_threads(4, 100, 10), 1);
        assert_eq!(effective_threads(1, 100, usize::MAX), 1);
        assert_eq!(effective_threads(4, 100, PAR_MIN_FLOPS), 4);
        assert_eq!(effective_threads(8, 3, PAR_MIN_FLOPS), 3);
    }

    #[test]
    fn packing_zero_width_and_empty_edges() {
        let b = Matrix::zeros(0, 5);
        let pb = PackedB::pack(&b);
        assert_eq!(pb.shape(), (0, 5));
        let a = Matrix::zeros(2, 0);
        let mut out = Matrix::zeros(2, 5);
        matmul_packed_into(&a, &pb, None, Act::Ident, 1, &mut out);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
