//! Model summaries: parameter counts and shape listings.
//!
//! The paper characterizes models by parameter size (TASTE/TURL: 14.5M,
//! Doduo: 108M, §6.2); this module produces the same accounting for any
//! [`ParamStore`], grouped by name prefix, so the reproduction's model
//! cards can be printed and size claims can be asserted in tests.

use crate::params::ParamStore;
use std::fmt;

/// One line of a model summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryRow {
    /// Name-prefix group (text before the first `.`).
    pub group: String,
    /// Number of tensors in the group.
    pub tensors: usize,
    /// Number of scalar parameters in the group.
    pub scalars: usize,
}

/// A grouped parameter accounting of a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// Per-group rows, ordered by first appearance.
    pub rows: Vec<SummaryRow>,
}

impl ModelSummary {
    /// Builds the summary by grouping parameters on their name prefix
    /// (`enc.layer0.attn.q.w` groups under `enc`).
    pub fn of(store: &ParamStore) -> ModelSummary {
        let mut rows: Vec<SummaryRow> = Vec::new();
        for id in store.ids() {
            let name = store.name(id);
            let group = name.split('.').next().unwrap_or(name).to_owned();
            let scalars = store.value(id).len();
            match rows.iter_mut().find(|r| r.group == group) {
                Some(row) => {
                    row.tensors += 1;
                    row.scalars += scalars;
                }
                None => rows.push(SummaryRow { group, tensors: 1, scalars }),
            }
        }
        ModelSummary { rows }
    }

    /// Total scalar parameters.
    pub fn total_scalars(&self) -> usize {
        self.rows.iter().map(|r| r.scalars).sum()
    }

    /// Total tensors.
    pub fn total_tensors(&self) -> usize {
        self.rows.iter().map(|r| r.tensors).sum()
    }

    /// Scalars in one group, zero if absent.
    pub fn group_scalars(&self, group: &str) -> usize {
        self.rows.iter().find(|r| r.group == group).map_or(0, |r| r.scalars)
    }
}

impl fmt::Display for ModelSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>8} {:>12}", "group", "tensors", "parameters")?;
        for r in &self.rows {
            writeln!(f, "{:<16} {:>8} {:>12}", r.group, r.tensors, r.scalars)?;
        }
        write!(
            f,
            "{:<16} {:>8} {:>12}",
            "total",
            self.total_tensors(),
            self.total_scalars()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut s = ParamStore::new(0);
        s.constant("enc.layer0.w", 4, 4, 0.0);
        s.constant("enc.layer0.b", 1, 4, 0.0);
        s.constant("head.w", 4, 2, 0.0);
        s.constant("awl", 1, 2, 1.0);
        s
    }

    #[test]
    fn groups_by_prefix_and_counts() {
        let summary = ModelSummary::of(&store());
        assert_eq!(summary.rows.len(), 3);
        assert_eq!(summary.group_scalars("enc"), 20);
        assert_eq!(summary.group_scalars("head"), 8);
        assert_eq!(summary.group_scalars("awl"), 2);
        assert_eq!(summary.group_scalars("nope"), 0);
        assert_eq!(summary.total_scalars(), 30);
        assert_eq!(summary.total_tensors(), 4);
    }

    #[test]
    fn totals_match_store_accounting() {
        let s = store();
        let summary = ModelSummary::of(&s);
        assert_eq!(summary.total_scalars(), s.num_scalars());
        assert_eq!(summary.total_tensors(), s.len());
    }

    #[test]
    fn display_renders_all_groups() {
        let text = ModelSummary::of(&store()).to_string();
        for needle in ["enc", "head", "awl", "total", "30"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn empty_store_summary() {
        let s = ParamStore::new(0);
        let summary = ModelSummary::of(&s);
        assert!(summary.rows.is_empty());
        assert_eq!(summary.total_scalars(), 0);
    }
}
