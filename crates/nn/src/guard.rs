//! Numerical-fault containment for training loops.
//!
//! Training shares a failure taxonomy with serving — faults arrive
//! mid-run and must be *contained*, not allowed to poison downstream
//! state — but the poison is numerical instead of infrastructural: one
//! NaN gradient silently corrupts every parameter it touches, and a
//! single pathological batch can fling the loss far from its basin.
//! This module is the training-side analog of the serving engine's
//! circuit breaker: an [`AnomalyDetector`] watches each step's loss and
//! global gradient norm, and renders a [`StepVerdict`] — apply the
//! optimizer step, skip it (drop the gradients on the floor), or
//! escalate to a rollback of the last checkpoint at a reduced learning
//! rate. Everything the detector sees is counted in a
//! [`TrainingHealth`] report returned alongside the trained model, so a
//! "successful" run that quietly skipped half its steps is visible.
//!
//! The detector itself is plain serializable state: it is checkpointed
//! with the rest of the training loop, so a killed-and-resumed run
//! renders the same verdicts as an uninterrupted one.

use serde::{Deserialize, Serialize};

/// Floor for the loss-spike baseline, so a near-zero EMA (a converged
/// loss) does not flag every subsequent step as a spike.
const BASELINE_FLOOR: f32 = 1e-3;

/// Thresholds and escalation limits for anomaly containment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnomalyPolicy {
    /// A finite loss above `spike_factor * max(EMA, floor)` is a spike;
    /// `0` disables spike detection (the NaN/Inf sentinels stay active).
    pub spike_factor: f32,
    /// Smoothing factor of the loss EMA baseline (weight of the newest
    /// observation).
    pub ema_alpha: f32,
    /// Clean steps observed before spike detection arms; early training
    /// loss is legitimately volatile.
    pub warmup_steps: u64,
    /// Consecutive anomalous steps tolerated (as skips) before the
    /// verdict escalates to rollback.
    pub max_consecutive: u32,
    /// Learning-rate multiplier applied on every rollback.
    pub lr_backoff: f32,
    /// Rollbacks tolerated across the whole run before training aborts
    /// with [`taste_core::TasteError::Training`].
    pub max_rollbacks: u64,
}

impl Default for AnomalyPolicy {
    fn default() -> Self {
        AnomalyPolicy {
            spike_factor: 8.0,
            ema_alpha: 0.1,
            warmup_steps: 8,
            max_consecutive: 3,
            lr_backoff: 0.5,
            max_rollbacks: 4,
        }
    }
}

/// The specific numerical anomaly a step tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anomaly {
    /// The loss evaluated to NaN or infinity.
    NonFiniteLoss,
    /// The global gradient norm is NaN or infinity.
    NonFiniteGrad,
    /// The loss is finite but far above its running baseline.
    LossSpike,
}

/// The detector's decision for one training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepVerdict {
    /// The step is clean: apply the optimizer update.
    Apply,
    /// The step is anomalous: drop its gradients, do not update, move on.
    Skip(Anomaly),
    /// Too many consecutive anomalies: restore the last checkpoint and
    /// retry at a reduced learning rate.
    Rollback(Anomaly),
}

/// Serializable loss-EMA and sentinel state.
///
/// `observe` must be called exactly once per training step, *after*
/// backward (so the gradient norm is available) and *before* the
/// optimizer step (so a poisoned update is never applied).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AnomalyDetector {
    ema: f32,
    clean_steps: u64,
    consecutive: u32,
}

impl AnomalyDetector {
    /// Classifies one step and updates the baseline. Clean steps feed
    /// the EMA; anomalous steps do not (a spike must not drag the
    /// baseline up toward itself).
    pub fn observe(&mut self, policy: &AnomalyPolicy, loss: f32, grad_norm: f32) -> StepVerdict {
        let anomaly = if !loss.is_finite() {
            Some(Anomaly::NonFiniteLoss)
        } else if !grad_norm.is_finite() {
            Some(Anomaly::NonFiniteGrad)
        } else if policy.spike_factor > 0.0
            && self.clean_steps >= policy.warmup_steps
            && loss > policy.spike_factor * self.ema.max(BASELINE_FLOOR)
        {
            Some(Anomaly::LossSpike)
        } else {
            None
        };
        match anomaly {
            None => {
                self.ema = if self.clean_steps == 0 {
                    loss
                } else {
                    policy.ema_alpha * loss + (1.0 - policy.ema_alpha) * self.ema
                };
                self.clean_steps += 1;
                self.consecutive = 0;
                StepVerdict::Apply
            }
            Some(a) => {
                self.consecutive += 1;
                if self.consecutive >= policy.max_consecutive.max(1) {
                    self.consecutive = 0;
                    StepVerdict::Rollback(a)
                } else {
                    StepVerdict::Skip(a)
                }
            }
        }
    }

    /// The current loss baseline, or `None` before the first clean step.
    pub fn baseline(&self) -> Option<f32> {
        (self.clean_steps > 0).then_some(self.ema)
    }
}

/// Anomaly and checkpoint telemetry for one training run, returned
/// alongside the trained model (and persisted inside every checkpoint,
/// so counts survive resume).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHealth {
    /// Optimizer steps actually applied.
    pub steps_applied: u64,
    /// Steps skipped by the anomaly detector (sum of the three causes).
    pub steps_skipped: u64,
    /// Skips caused by a NaN/Inf loss.
    pub non_finite_loss: u64,
    /// Skips caused by a NaN/Inf gradient norm.
    pub non_finite_grad: u64,
    /// Skips caused by a loss spike.
    pub loss_spikes: u64,
    /// Checkpoint rollbacks taken after consecutive anomalies.
    pub rollbacks: u64,
    /// Checkpoints written by this run.
    pub checkpoints_written: u64,
    /// Corrupt checkpoint files quarantined while loading.
    pub checkpoints_quarantined: u64,
    /// The step the run resumed from, if it restored a checkpoint at
    /// startup rather than starting fresh.
    pub resumed_from_step: Option<u64>,
    /// The base learning rate at the end of the run (reduced from the
    /// configured rate if rollbacks fired).
    pub final_lr: f32,
}

impl TrainingHealth {
    /// Counts one skipped step under its cause.
    pub fn record_anomaly(&mut self, anomaly: Anomaly) {
        self.steps_skipped += 1;
        match anomaly {
            Anomaly::NonFiniteLoss => self.non_finite_loss += 1,
            Anomaly::NonFiniteGrad => self.non_finite_grad += 1,
            Anomaly::LossSpike => self.loss_spikes += 1,
        }
    }

    /// Whether the run saw no anomalies, rollbacks, or corrupt
    /// checkpoints.
    pub fn is_clean(&self) -> bool {
        self.steps_skipped == 0 && self.rollbacks == 0 && self.checkpoints_quarantined == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AnomalyPolicy {
        AnomalyPolicy { warmup_steps: 3, max_consecutive: 2, ..Default::default() }
    }

    #[test]
    fn clean_steps_apply_and_feed_baseline() {
        let mut d = AnomalyDetector::default();
        let p = policy();
        assert_eq!(d.observe(&p, 1.0, 0.5), StepVerdict::Apply);
        assert_eq!(d.observe(&p, 0.9, 0.5), StepVerdict::Apply);
        let base = d.baseline().unwrap();
        assert!(base > 0.9 && base <= 1.0);
    }

    #[test]
    fn non_finite_loss_and_grad_are_flagged_immediately() {
        let mut d = AnomalyDetector::default();
        let p = policy();
        // Sentinels are armed even at step 0, before any warmup.
        assert_eq!(d.observe(&p, f32::NAN, 0.5), StepVerdict::Skip(Anomaly::NonFiniteLoss));
        assert_eq!(d.observe(&p, 1.0, f32::INFINITY), StepVerdict::Rollback(Anomaly::NonFiniteGrad));
    }

    #[test]
    fn spike_detection_waits_for_warmup() {
        let mut d = AnomalyDetector::default();
        let p = policy();
        // A huge first loss is tolerated: the baseline is still forming.
        assert_eq!(d.observe(&p, 1000.0, 0.5), StepVerdict::Apply);
        for _ in 0..3 {
            assert_eq!(d.observe(&p, 1.0, 0.5), StepVerdict::Apply);
        }
        // Armed now; a 100x excursion is a spike.
        let ema = d.baseline().unwrap();
        assert_eq!(d.observe(&p, ema * 100.0, 0.5), StepVerdict::Skip(Anomaly::LossSpike));
        // ...and the spike must not have dragged the baseline up.
        assert_eq!(d.baseline().unwrap(), ema);
    }

    #[test]
    fn consecutive_anomalies_escalate_then_reset() {
        let mut d = AnomalyDetector::default();
        let p = policy(); // max_consecutive = 2
        assert_eq!(d.observe(&p, f32::NAN, 0.5), StepVerdict::Skip(Anomaly::NonFiniteLoss));
        assert_eq!(d.observe(&p, f32::NAN, 0.5), StepVerdict::Rollback(Anomaly::NonFiniteLoss));
        // The rollback resets the streak: the next anomaly is a skip again.
        assert_eq!(d.observe(&p, f32::NAN, 0.5), StepVerdict::Skip(Anomaly::NonFiniteLoss));
        // A clean step also clears the streak.
        assert_eq!(d.observe(&p, 1.0, 0.5), StepVerdict::Apply);
        assert_eq!(d.observe(&p, f32::NAN, 0.5), StepVerdict::Skip(Anomaly::NonFiniteLoss));
    }

    #[test]
    fn health_counts_by_cause() {
        let mut h = TrainingHealth::default();
        assert!(h.is_clean());
        h.record_anomaly(Anomaly::NonFiniteLoss);
        h.record_anomaly(Anomaly::LossSpike);
        h.record_anomaly(Anomaly::LossSpike);
        assert_eq!(h.steps_skipped, 3);
        assert_eq!(h.non_finite_loss, 1);
        assert_eq!(h.loss_spikes, 2);
        assert!(!h.is_clean());
    }

    #[test]
    fn detector_state_survives_serialization() {
        let mut d = AnomalyDetector::default();
        let p = policy();
        for i in 0..5 {
            d.observe(&p, 1.0 + i as f32 * 0.01, 0.5);
        }
        d.observe(&p, f32::NAN, 0.5);
        let restored: AnomalyDetector =
            serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
        assert_eq!(restored, d);
        // Both must render the same verdict on the same next step.
        let mut a = d;
        let mut b = restored;
        assert_eq!(a.observe(&p, f32::NAN, 0.5), b.observe(&p, f32::NAN, 0.5));
    }
}
