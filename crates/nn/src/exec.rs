//! Execution backends: the [`Forward`] trait abstracting the forward op
//! set, and the tape-free [`InferExec`] serving backend.
//!
//! Training and serving have opposite needs. Training wants a recorded
//! DAG it can differentiate — that is [`Tape`], which clones parameter
//! matrices into leaf nodes and allocates a fresh [`Matrix`] per op so
//! the backward pass can revisit every intermediate. Serving wants none
//! of that: `predict_meta` / `predict_content` never call `backward`, so
//! every tape node is pure overhead.
//!
//! [`Forward`] captures the op surface both paths share (matmul, adds,
//! activations, layer norm, softmax, slicing, concatenation, gathers).
//! Model forwards written against `impl Forward` run unchanged on either
//! backend:
//!
//! * [`Tape`] implements it by delegating to its recording constructors —
//!   the training path is untouched.
//! * [`InferExec`] evaluates eagerly into an arena of scratch buffers.
//!   No DAG is built, parameter nodes are resolved as references into the
//!   [`ParamStore`] (never cloned), and buffers are recycled across
//!   sessions, so a warmed executor performs no allocation at all on
//!   steady-state prediction calls.
//!
//! Both backends run the *same* numeric kernels (the lane-vectorized
//! matmuls and shared row kernels in [`crate::kernels`], shared
//! activation scalars), so their forward values are bit-identical — the
//! parity tests assert a 1e-5 tolerance but in practice observe exact
//! equality.
//!
//! On top of the shared op set, [`Forward`] exposes *fused* composites
//! (`linear`, `linear_act`, `softmax_rows_scaled`, `layer_norm_affine`,
//! `matmul_bt`) with default implementations built from the primitives:
//! the tape keeps recording the exact op sequence it always did, while
//! [`ExecSession`] overrides them with single-pass kernels constructed to
//! be bit-identical to the composed form. The serving executor also packs
//! static weight matrices into SIMD-friendly column panels once and
//! caches them per [`ParamId`] (validated against the store's
//! `(uid, version)`, so online weight updates repack automatically), and
//! can run its matmuls row-parallel on [`crate::pool::KernelPool`] when
//! `kernel_threads > 1` — with results provably independent of the thread
//! count.

use crate::kernels::{self, Act, PackedB};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::{gelu_f, sigmoid_f, NodeId, Tape};
use std::collections::HashMap;

/// The forward op set shared by the training ([`Tape`]) and serving
/// ([`InferExec`]) backends.
///
/// Handles returned by one backend instance are only meaningful with
/// that instance. Methods taking a [`ParamStore`] must receive the same
/// store for every call within a session.
pub trait Forward {
    /// A constant / input leaf owning `value`.
    fn leaf(&mut self, value: Matrix) -> NodeId;

    /// A leaf referencing the trainable parameter `pid`.
    fn param(&mut self, store: &ParamStore, pid: ParamId) -> NodeId;

    /// Embedding lookup: gathers `indices` rows of the parameter matrix.
    fn gather_param_rows(&mut self, store: &ParamStore, pid: ParamId, indices: &[usize]) -> NodeId;

    /// The forward value of a node.
    fn value(&self, id: NodeId) -> &Matrix;

    /// Matrix product.
    fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId;

    /// Elementwise sum of two same-shape nodes.
    fn add(&mut self, a: NodeId, b: NodeId) -> NodeId;

    /// Elementwise product of two same-shape nodes.
    fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId;

    /// Broadcast add of a `[1, n]` row vector to every row of `[m, n]`.
    fn add_row(&mut self, x: NodeId, row: NodeId) -> NodeId;

    /// Broadcast multiply of every row of `[m, n]` by a `[1, n]` row.
    fn mul_row(&mut self, x: NodeId, row: NodeId) -> NodeId;

    /// Scalar scaling.
    fn scale(&mut self, x: NodeId, alpha: f32) -> NodeId;

    /// Rectified linear unit.
    fn relu(&mut self, x: NodeId) -> NodeId;

    /// GELU activation (tanh approximation, as BERT uses).
    fn gelu(&mut self, x: NodeId) -> NodeId;

    /// Logistic sigmoid.
    fn sigmoid(&mut self, x: NodeId) -> NodeId;

    /// Hyperbolic tangent.
    fn tanh(&mut self, x: NodeId) -> NodeId;

    /// Row-wise softmax.
    fn softmax_rows(&mut self, x: NodeId) -> NodeId;

    /// Row-wise layer normalization without the affine transform.
    fn layer_norm_rows(&mut self, x: NodeId, eps: f32) -> NodeId;

    /// Vertical concatenation (token axis).
    fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId;

    /// Horizontal concatenation (feature axis).
    fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId;

    /// Copy of rows `[start, start+len)`.
    fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId;

    /// Copy of columns `[start, start+len)`.
    fn slice_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId;

    /// Transpose.
    fn transpose(&mut self, x: NodeId) -> NodeId;

    /// Column means: `[m, n] -> [1, n]`.
    fn mean_rows(&mut self, x: NodeId) -> NodeId;

    /// A leaf holding a copy of `value`. Backends with reusable buffers
    /// override this to copy into recycled storage instead of cloning.
    fn leaf_copy(&mut self, value: &Matrix) -> NodeId {
        self.leaf(value.clone())
    }

    /// A leaf holding the given feature rows stacked into a matrix — the
    /// backend-aware replacement for building a [`Matrix`] out of
    /// per-column feature vectors and then cloning it into a leaf.
    ///
    /// # Panics
    /// Panics when `rows` is empty or ragged.
    fn leaf_rows(&mut self, rows: &[&[f32]]) -> NodeId {
        self.leaf(stack_rows(rows))
    }

    /// A leaf holding `indices` rows gathered from `src`.
    fn leaf_gather(&mut self, src: &Matrix, indices: &[usize]) -> NodeId {
        self.leaf(src.gather_rows(indices))
    }

    /// Gathers `indices` rows of a node into a `[indices.len(), cols]`
    /// node. The default builds a slice/vcat chain (differentiable on a
    /// tape); eager backends override it with a single gather.
    ///
    /// # Panics
    /// Panics when `indices` is empty.
    fn gather_rows(&mut self, x: NodeId, indices: &[usize]) -> NodeId {
        assert!(!indices.is_empty(), "cannot gather zero rows");
        let mut acc: Option<NodeId> = None;
        for &p in indices {
            let row = self.slice_rows(x, p, 1);
            acc = Some(match acc {
                Some(prev) => self.vcat(prev, row),
                None => row,
            });
        }
        acc.expect("non-empty indices")
    }

    /// Vertical concatenation of many nodes — the batch-assembly
    /// primitive behind micro-batched serving, where B column sequences
    /// are row-stacked into one node. The default folds [`Forward::vcat`]
    /// pairwise (differentiable on a tape); eager backends override it
    /// with a single-allocation copy.
    ///
    /// # Panics
    /// Panics when `parts` is empty.
    fn vcat_all(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "cannot vcat zero parts");
        let mut acc = parts[0];
        for &p in &parts[1..] {
            acc = self.vcat(acc, p);
        }
        acc
    }

    // ---- fused composites --------------------------------------------
    //
    // Defaults compose the primitives above, so the tape records the
    // exact op sequence it always did (and stays differentiable). The
    // serving backend overrides them with single-pass kernels that are
    // bit-identical to the composed form.

    /// Applies an [`Act`] activation elementwise ([`Act::Ident`] is the
    /// identity and returns `x` itself).
    fn activation(&mut self, x: NodeId, act: Act) -> NodeId {
        match act {
            Act::Ident => x,
            Act::Relu => self.relu(x),
            Act::Gelu => self.gelu(x),
            Act::Sigmoid => self.sigmoid(x),
            Act::Tanh => self.tanh(x),
        }
    }

    /// Affine map `x @ W + b` with `W`, `b` trainable parameters.
    fn linear(&mut self, store: &ParamStore, x: NodeId, w: ParamId, b: ParamId) -> NodeId {
        let wn = self.param(store, w);
        let bn = self.param(store, b);
        let y = self.matmul(x, wn);
        self.add_row(y, bn)
    }

    /// `act(x @ W + b)` — the full dense-layer forward in one call.
    fn linear_act(
        &mut self,
        store: &ParamStore,
        x: NodeId,
        w: ParamId,
        b: ParamId,
        act: Act,
    ) -> NodeId {
        let y = self.linear(store, x, w, b);
        self.activation(y, act)
    }

    /// `a @ b^T` — the attention-score product. The default materializes
    /// the transpose; the serving backend runs a transpose-free kernel.
    fn matmul_bt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let bt = self.transpose(b);
        self.matmul(a, bt)
    }

    /// `softmax_rows(alpha * x)` — scaled attention scores.
    fn softmax_rows_scaled(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let s = self.scale(x, alpha);
        self.softmax_rows(s)
    }

    /// Vertical concatenation of row *ranges* `(node, start, len)` —
    /// the key/value assembly primitive of batched cross-attention,
    /// where each sequence's KV stack interleaves rows of different
    /// nodes. The default slices each range out and folds
    /// [`Forward::vcat_all`] (differentiable on a tape); the serving
    /// backend overrides it with a single-allocation copy straight from
    /// the source buffers.
    ///
    /// # Panics
    /// Panics when `parts` is empty or a range is out of bounds.
    fn vcat_rows(&mut self, parts: &[(NodeId, usize, usize)]) -> NodeId {
        assert!(!parts.is_empty(), "cannot vcat zero ranges");
        let sliced: Vec<NodeId> = parts
            .iter()
            .map(|&(p, start, len)| {
                if start == 0 && len == self.value(p).rows() {
                    p
                } else {
                    self.slice_rows(p, start, len)
                }
            })
            .collect();
        self.vcat_all(&sliced)
    }

    /// Block-diagonal multi-head attention over row-stacked sequences:
    /// `q` is the projected query stack `[Σ q_lens, dim]`, `k`/`v` the
    /// projected key/value stacks `[Σ kv_lens, dim]`, and sequence `b`'s
    /// queries attend only to sequence `b`'s keys/values. Returns the
    /// head-merged context `[Σ q_lens, dim]` (pre-output-projection).
    ///
    /// The default composes the primitive ops — per head, column slices
    /// of the stacks, per-sequence row slices, `matmul_bt`,
    /// `softmax_rows_scaled`, `matmul`, then `vcat_all`/`hcat` assembly —
    /// so the tape records the exact differentiable sequence. The serving
    /// backend overrides it with [`crate::kernels::attn_blocks_into`],
    /// which reads the stacks in place and writes the merged context
    /// directly: bit-identical, with zero intermediate copies.
    ///
    /// # Panics
    /// Panics when the batch is empty, the length vectors disagree, or
    /// `heads` does not divide the stack width.
    #[allow(clippy::too_many_arguments)] // the full attention-block geometry
    fn attn_blocks(
        &mut self,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        q_lens: &[usize],
        kv_lens: &[usize],
        heads: usize,
        scale: f32,
    ) -> NodeId {
        assert_eq!(q_lens.len(), kv_lens.len(), "per-sequence length mismatch");
        assert!(!q_lens.is_empty(), "cannot attend over an empty batch");
        let dim = self.value(q).cols();
        assert!(heads > 0 && dim.is_multiple_of(heads), "heads {heads} must divide dim {dim}");
        let dh = dim / heads;
        let mut merged: Option<NodeId> = None;
        let mut blocks = Vec::with_capacity(q_lens.len());
        for h in 0..heads {
            let qh = self.slice_cols(q, h * dh, dh);
            let kh = self.slice_cols(k, h * dh, dh);
            let vh = self.slice_cols(v, h * dh, dh);
            blocks.clear();
            let (mut qo, mut ko) = (0, 0);
            for (&ql, &kl) in q_lens.iter().zip(kv_lens) {
                let qb = self.slice_rows(qh, qo, ql);
                let kb = self.slice_rows(kh, ko, kl);
                let vb = self.slice_rows(vh, ko, kl);
                let scores = self.matmul_bt(qb, kb);
                let attn = self.softmax_rows_scaled(scores, scale);
                blocks.push(self.matmul(attn, vb));
                qo += ql;
                ko += kl;
            }
            let out = self.vcat_all(&blocks);
            merged = Some(match merged {
                Some(prev) => self.hcat(prev, out),
                None => out,
            });
        }
        merged.expect("at least one head")
    }

    /// `layer_norm(x) * gain + bias` — the full LayerNorm module forward.
    fn layer_norm_affine(
        &mut self,
        store: &ParamStore,
        x: NodeId,
        gain: ParamId,
        bias: ParamId,
        eps: f32,
    ) -> NodeId {
        let normed = self.layer_norm_rows(x, eps);
        let g = self.param(store, gain);
        let b = self.param(store, bias);
        let scaled = self.mul_row(normed, g);
        self.add_row(scaled, b)
    }
}

/// Stacks row slices into a dense matrix.
fn stack_rows(rows: &[&[f32]]) -> Matrix {
    assert!(!rows.is_empty(), "cannot stack zero rows");
    let cols = rows[0].len();
    let mut out = Matrix::zeros(rows.len(), cols);
    for (r, src) in rows.iter().enumerate() {
        assert_eq!(src.len(), cols, "ragged feature rows");
        out.row_slice_mut(r).copy_from_slice(src);
    }
    out
}

impl Forward for Tape {
    fn leaf(&mut self, value: Matrix) -> NodeId {
        Tape::leaf(self, value)
    }

    fn param(&mut self, store: &ParamStore, pid: ParamId) -> NodeId {
        Tape::param(self, store, pid)
    }

    fn gather_param_rows(&mut self, store: &ParamStore, pid: ParamId, indices: &[usize]) -> NodeId {
        Tape::gather_param_rows(self, store, pid, indices)
    }

    fn value(&self, id: NodeId) -> &Matrix {
        Tape::value(self, id)
    }

    fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        Tape::matmul(self, a, b)
    }

    fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        Tape::add(self, a, b)
    }

    fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        Tape::mul(self, a, b)
    }

    fn add_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        Tape::add_row(self, x, row)
    }

    fn mul_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        Tape::mul_row(self, x, row)
    }

    fn scale(&mut self, x: NodeId, alpha: f32) -> NodeId {
        Tape::scale(self, x, alpha)
    }

    fn relu(&mut self, x: NodeId) -> NodeId {
        Tape::relu(self, x)
    }

    fn gelu(&mut self, x: NodeId) -> NodeId {
        Tape::gelu(self, x)
    }

    fn sigmoid(&mut self, x: NodeId) -> NodeId {
        Tape::sigmoid(self, x)
    }

    fn tanh(&mut self, x: NodeId) -> NodeId {
        Tape::tanh(self, x)
    }

    fn softmax_rows(&mut self, x: NodeId) -> NodeId {
        Tape::softmax_rows(self, x)
    }

    fn layer_norm_rows(&mut self, x: NodeId, eps: f32) -> NodeId {
        Tape::layer_norm_rows(self, x, eps)
    }

    fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        Tape::vcat(self, a, b)
    }

    fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        Tape::hcat(self, a, b)
    }

    fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        Tape::slice_rows(self, x, start, len)
    }

    fn slice_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        Tape::slice_cols(self, x, start, len)
    }

    fn transpose(&mut self, x: NodeId) -> NodeId {
        Tape::transpose(self, x)
    }

    fn mean_rows(&mut self, x: NodeId) -> NodeId {
        Tape::mean_rows(self, x)
    }
}

/// Where a session node's value lives: a recycled arena buffer, or a
/// parameter resolved by reference (never copied).
#[derive(Clone, Copy)]
enum Slot {
    Buf(usize),
    Param(ParamId),
}

/// A packed weight with the store identity/version it was packed from.
struct PackedEntry {
    store_uid: u64,
    version: u64,
    panels: PackedB,
}

/// The tape-free serving executor: an arena of scratch [`Matrix`] buffers
/// recycled across calls.
///
/// An `InferExec` is cheap to create but meant to be long-lived — one per
/// worker thread — because its buffers persist across
/// [`InferExec::session`] calls: the first prediction sizes the arena and
/// every subsequent same-shaped prediction runs allocation-free. Weight
/// matrices used as matmul right-hand sides are additionally packed into
/// SIMD column panels once per worker and cached across sessions (serving
/// weights are static); the cache is validated against the parameter
/// store's `(uid, version)`, so swapping stores or updating weights
/// online repacks lazily instead of serving stale panels.
#[derive(Default)]
pub struct InferExec {
    bufs: Vec<Matrix>,
    slots: Vec<Slot>,
    live: usize,
    /// Kernel thread count (0 is treated as 1 so `Default` stays derived).
    threads: usize,
    packed: HashMap<ParamId, PackedEntry>,
}

impl InferExec {
    /// An empty executor; buffers are grown on first use.
    pub fn new() -> InferExec {
        InferExec::default()
    }

    /// An empty executor whose matmuls may use up to `threads` threads.
    pub fn with_kernel_threads(threads: usize) -> InferExec {
        let mut exec = InferExec::default();
        exec.set_kernel_threads(threads);
        exec
    }

    /// Sets the matmul thread budget (clamped to at least 1). Results are
    /// bit-identical for every setting; this only trades latency.
    pub fn set_kernel_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The effective matmul thread budget.
    pub fn kernel_threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Number of weight matrices currently held in packed form.
    pub fn packed_weight_count(&self) -> usize {
        self.packed.len()
    }

    /// Starts a forward session over `store`. All buffers from previous
    /// sessions become recyclable; their contents are dead. Packed
    /// weights persist (and are revalidated lazily against `store`).
    pub fn session<'s>(&'s mut self, store: &'s ParamStore) -> ExecSession<'s> {
        self.live = 0;
        self.slots.clear();
        ExecSession { exec: self, store }
    }

    /// Number of arena buffers currently owned (a stable count across
    /// repeated same-shape sessions demonstrates buffer reuse).
    pub fn buffer_count(&self) -> usize {
        self.bufs.len()
    }

    fn alloc(&mut self, rows: usize, cols: usize) -> usize {
        let idx = self.live;
        if idx == self.bufs.len() {
            self.bufs.push(Matrix::zeros(rows, cols));
        } else {
            self.bufs[idx].reset_shape(rows, cols);
        }
        self.live += 1;
        idx
    }

    /// Guarantees a current packed copy of `pid`'s value. The version
    /// check is store-wide (any parameter mutation bumps it), which is
    /// conservative: after an online update every weight repacks on next
    /// use — correct, and negligible next to the update itself.
    fn ensure_packed(&mut self, store: &ParamStore, pid: ParamId) {
        let (uid, version) = (store.uid(), store.version());
        let fresh = matches!(
            self.packed.get(&pid),
            Some(e) if e.store_uid == uid && e.version == version
        );
        if !fresh {
            self.packed.insert(
                pid,
                PackedEntry { store_uid: uid, version, panels: PackedB::pack(store.value(pid)) },
            );
        }
    }
}

/// One forward pass on an [`InferExec`]: borrows the executor's arena and
/// the parameter store, and implements [`Forward`] by eager evaluation.
pub struct ExecSession<'s> {
    exec: &'s mut InferExec,
    store: &'s ParamStore,
}

impl ExecSession<'_> {
    fn get(&self, id: NodeId) -> &Matrix {
        match self.exec.slots[id.index()] {
            Slot::Buf(i) => &self.exec.bufs[i],
            Slot::Param(p) => self.store.value(p),
        }
    }

    fn push_slot(&mut self, slot: Slot) -> NodeId {
        self.exec.slots.push(slot);
        NodeId::from_index(self.exec.slots.len() - 1)
    }

    /// Allocates a `[rows, cols]` output buffer, lets `f` fill it (the
    /// buffer contents are unspecified on entry — `f` must overwrite
    /// every element), and returns its node. The buffer is temporarily
    /// moved out of the arena so `f` can read other nodes through
    /// `&self` while writing the output.
    fn compute(&mut self, rows: usize, cols: usize, f: impl FnOnce(&Self, &mut Matrix)) -> NodeId {
        let oi = self.exec.alloc(rows, cols);
        let mut out = std::mem::take(&mut self.exec.bufs[oi]);
        f(self, &mut out);
        debug_assert!(out.all_finite(), "non-finite forward value");
        self.exec.bufs[oi] = out;
        self.push_slot(Slot::Buf(oi))
    }

    fn map_into(&mut self, x: NodeId, f: impl Fn(f32) -> f32) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        self.compute(rows, cols, |s, out| {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(s.get(x).as_slice()) {
                *o = f(v);
            }
        })
    }

    fn zip_into(&mut self, a: NodeId, b: NodeId, f: impl Fn(f32, f32) -> f32) -> NodeId {
        let (rows, cols) = self.get(a).shape();
        assert_eq!(self.get(b).shape(), (rows, cols), "elementwise shape mismatch");
        self.compute(rows, cols, |s, out| {
            let av = s.get(a).as_slice();
            let bv = s.get(b).as_slice();
            for ((o, &x), &y) in out.as_mut_slice().iter_mut().zip(av).zip(bv) {
                *o = f(x, y);
            }
        })
    }
}

impl Forward for ExecSession<'_> {
    fn leaf(&mut self, value: Matrix) -> NodeId {
        self.leaf_copy(&value)
    }

    fn param(&mut self, store: &ParamStore, pid: ParamId) -> NodeId {
        debug_assert!(
            std::ptr::eq(store, self.store),
            "param() must use the session's store"
        );
        let _ = store;
        self.push_slot(Slot::Param(pid))
    }

    fn gather_param_rows(&mut self, store: &ParamStore, pid: ParamId, indices: &[usize]) -> NodeId {
        debug_assert!(
            std::ptr::eq(store, self.store),
            "gather_param_rows() must use the session's store"
        );
        let _ = store;
        let cols = self.store.value(pid).cols();
        self.compute(indices.len(), cols, |s, out| {
            let table = s.store.value(pid);
            for (r, &i) in indices.iter().enumerate() {
                out.row_slice_mut(r).copy_from_slice(table.row_slice(i));
            }
        })
    }

    fn value(&self, id: NodeId) -> &Matrix {
        self.get(id)
    }

    fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let rows = self.get(a).rows();
        let cols = self.get(b).cols();
        let threads = self.exec.kernel_threads();
        // A parameter right-hand side is a static serving weight: run the
        // packed-panel kernel against the cached pack.
        if let Slot::Param(pid) = self.exec.slots[b.index()] {
            self.exec.ensure_packed(self.store, pid);
            return self.compute(rows, cols, |s, out| {
                let pb = &s.exec.packed[&pid].panels;
                kernels::matmul_packed_into(s.get(a), pb, None, Act::Ident, threads, out)
            });
        }
        self.compute(rows, cols, |s, out| {
            kernels::matmul_into_mt(s.get(a), s.get(b), threads, out)
        })
    }

    fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.zip_into(a, b, |x, y| x + y)
    }

    fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.zip_into(a, b, |x, y| x * y)
    }

    fn add_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        let rv = self.get(row);
        assert_eq!(rv.rows(), 1, "add_row: rhs must be a row vector");
        assert_eq!(cols, rv.cols(), "add_row: column mismatch");
        self.compute(rows, cols, |s, out| {
            let rvs = s.get(row).as_slice();
            for r in 0..rows {
                let src = s.get(x).row_slice(r);
                for ((o, &v), &b) in out.row_slice_mut(r).iter_mut().zip(src).zip(rvs) {
                    *o = v + b;
                }
            }
        })
    }

    fn mul_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        let rv = self.get(row);
        assert_eq!(rv.rows(), 1, "mul_row: rhs must be a row vector");
        assert_eq!(cols, rv.cols(), "mul_row: column mismatch");
        self.compute(rows, cols, |s, out| {
            let rvs = s.get(row).as_slice();
            for r in 0..rows {
                let src = s.get(x).row_slice(r);
                for ((o, &v), &b) in out.row_slice_mut(r).iter_mut().zip(src).zip(rvs) {
                    *o = v * b;
                }
            }
        })
    }

    fn scale(&mut self, x: NodeId, alpha: f32) -> NodeId {
        self.map_into(x, |v| v * alpha)
    }

    fn relu(&mut self, x: NodeId) -> NodeId {
        self.map_into(x, |v| v.max(0.0))
    }

    fn gelu(&mut self, x: NodeId) -> NodeId {
        self.map_into(x, gelu_f)
    }

    fn sigmoid(&mut self, x: NodeId) -> NodeId {
        self.map_into(x, sigmoid_f)
    }

    fn tanh(&mut self, x: NodeId) -> NodeId {
        self.map_into(x, f32::tanh)
    }

    fn softmax_rows(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        self.compute(rows, cols, |s, out| {
            out.copy_from(s.get(x));
            out.softmax_rows_inplace();
        })
    }

    fn layer_norm_rows(&mut self, x: NodeId, eps: f32) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        self.compute(rows, cols, |s, out| {
            out.copy_from(s.get(x));
            out.layer_norm_rows_inplace(eps);
        })
    }

    fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ar, cols) = self.get(a).shape();
        let (br, bc) = self.get(b).shape();
        assert_eq!(cols, bc, "vcat column mismatch");
        self.compute(ar + br, cols, |s, out| {
            out.as_mut_slice()[..ar * cols].copy_from_slice(s.get(a).as_slice());
            out.as_mut_slice()[ar * cols..].copy_from_slice(s.get(b).as_slice());
        })
    }

    fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (rows, ac) = self.get(a).shape();
        let (br, bc) = self.get(b).shape();
        assert_eq!(rows, br, "hcat row mismatch");
        self.compute(rows, ac + bc, |s, out| {
            for r in 0..rows {
                let dst = out.row_slice_mut(r);
                dst[..ac].copy_from_slice(s.get(a).row_slice(r));
                dst[ac..].copy_from_slice(s.get(b).row_slice(r));
            }
        })
    }

    fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        assert!(start + len <= rows, "slice_rows out of range");
        self.compute(len, cols, |s, out| {
            let src = &s.get(x).as_slice()[start * cols..(start + len) * cols];
            out.as_mut_slice().copy_from_slice(src);
        })
    }

    fn slice_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        assert!(start + len <= cols, "slice_cols out of range");
        self.compute(rows, len, |s, out| {
            for r in 0..rows {
                let src = &s.get(x).row_slice(r)[start..start + len];
                out.row_slice_mut(r).copy_from_slice(src);
            }
        })
    }

    fn transpose(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        self.compute(cols, rows, |s, out| {
            let src = s.get(x);
            for r in 0..rows {
                for (c, &v) in src.row_slice(r).iter().enumerate() {
                    out.set(c, r, v);
                }
            }
        })
    }

    fn mean_rows(&mut self, x: NodeId) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        let m = rows as f32;
        self.compute(1, cols, |s, out| {
            out.fill_zero();
            let src = s.get(x);
            for r in 0..rows {
                for (o, &v) in out.as_mut_slice().iter_mut().zip(src.row_slice(r)) {
                    *o += v;
                }
            }
            for o in out.as_mut_slice() {
                *o /= m;
            }
        })
    }

    fn leaf_copy(&mut self, value: &Matrix) -> NodeId {
        let (rows, cols) = value.shape();
        self.compute(rows, cols, |_, out| out.copy_from(value))
    }

    fn leaf_rows(&mut self, rows: &[&[f32]]) -> NodeId {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let cols = rows[0].len();
        self.compute(rows.len(), cols, |_, out| {
            for (r, src) in rows.iter().enumerate() {
                assert_eq!(src.len(), cols, "ragged feature rows");
                out.row_slice_mut(r).copy_from_slice(src);
            }
        })
    }

    fn leaf_gather(&mut self, src: &Matrix, indices: &[usize]) -> NodeId {
        self.compute(indices.len(), src.cols(), |_, out| {
            for (r, &i) in indices.iter().enumerate() {
                out.row_slice_mut(r).copy_from_slice(src.row_slice(i));
            }
        })
    }

    fn gather_rows(&mut self, x: NodeId, indices: &[usize]) -> NodeId {
        assert!(!indices.is_empty(), "cannot gather zero rows");
        let (rows, cols) = self.get(x).shape();
        self.compute(indices.len(), cols, |s, out| {
            let src = s.get(x);
            for (r, &i) in indices.iter().enumerate() {
                assert!(i < rows, "gather index {i} out of {rows} rows");
                out.row_slice_mut(r).copy_from_slice(src.row_slice(i));
            }
        })
    }

    fn vcat_all(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "cannot vcat zero parts");
        if parts.len() == 1 {
            return parts[0];
        }
        let cols = self.get(parts[0]).cols();
        let total: usize = parts
            .iter()
            .map(|&p| {
                let (r, c) = self.get(p).shape();
                assert_eq!(c, cols, "vcat_all column mismatch");
                r
            })
            .sum();
        self.compute(total, cols, |s, out| {
            let mut off = 0;
            for &p in parts {
                let src = s.get(p).as_slice();
                out.as_mut_slice()[off..off + src.len()].copy_from_slice(src);
                off += src.len();
            }
        })
    }

    // ---- fused overrides: one pass, bit-identical to the defaults ----

    fn linear(&mut self, store: &ParamStore, x: NodeId, w: ParamId, b: ParamId) -> NodeId {
        self.linear_act(store, x, w, b, Act::Ident)
    }

    fn linear_act(
        &mut self,
        store: &ParamStore,
        x: NodeId,
        w: ParamId,
        b: ParamId,
        act: Act,
    ) -> NodeId {
        debug_assert!(
            std::ptr::eq(store, self.store),
            "linear_act() must use the session's store"
        );
        let _ = store;
        let rows = self.get(x).rows();
        let cols = self.store.value(w).cols();
        let threads = self.exec.kernel_threads();
        self.exec.ensure_packed(self.store, w);
        self.compute(rows, cols, |s, out| {
            let pb = &s.exec.packed[&w].panels;
            kernels::matmul_packed_into(s.get(x), pb, Some(s.store.value(b)), act, threads, out)
        })
    }

    fn matmul_bt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let rows = self.get(a).rows();
        let cols = self.get(b).rows();
        let threads = self.exec.kernel_threads();
        self.compute(rows, cols, |s, out| {
            kernels::matmul_bt_into_mt(s.get(a), s.get(b), threads, out)
        })
    }

    fn softmax_rows_scaled(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let (rows, cols) = self.get(x).shape();
        self.compute(rows, cols, |s, out| {
            kernels::softmax_rows_scaled_into(s.get(x), alpha, out)
        })
    }

    fn vcat_rows(&mut self, parts: &[(NodeId, usize, usize)]) -> NodeId {
        assert!(!parts.is_empty(), "cannot vcat zero ranges");
        let cols = self.get(parts[0].0).cols();
        let total: usize = parts
            .iter()
            .map(|&(p, start, len)| {
                let (r, c) = self.get(p).shape();
                assert_eq!(c, cols, "vcat_rows column mismatch");
                assert!(start + len <= r, "vcat_rows range out of bounds");
                len
            })
            .sum();
        self.compute(total, cols, |s, out| {
            let mut off = 0;
            for &(p, start, len) in parts {
                let src = &s.get(p).as_slice()[start * cols..(start + len) * cols];
                out.as_mut_slice()[off..off + src.len()].copy_from_slice(src);
                off += src.len();
            }
        })
    }

    fn attn_blocks(
        &mut self,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        q_lens: &[usize],
        kv_lens: &[usize],
        heads: usize,
        scale: f32,
    ) -> NodeId {
        let (rows, dim) = self.get(q).shape();
        let threads = self.exec.kernel_threads();
        self.compute(rows, dim, |s, out| {
            kernels::attn_blocks_into(
                s.get(q),
                s.get(k),
                s.get(v),
                q_lens,
                kv_lens,
                heads,
                scale,
                threads,
                out,
            )
        })
    }

    fn layer_norm_affine(
        &mut self,
        store: &ParamStore,
        x: NodeId,
        gain: ParamId,
        bias: ParamId,
        eps: f32,
    ) -> NodeId {
        debug_assert!(
            std::ptr::eq(store, self.store),
            "layer_norm_affine() must use the session's store"
        );
        let _ = store;
        let (rows, cols) = self.get(x).shape();
        self.compute(rows, cols, |s, out| {
            kernels::layer_norm_affine_into(
                s.get(x),
                s.store.value(gain),
                s.store.value(bias),
                eps,
                out,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(seed: u64) -> ParamStore {
        ParamStore::new(seed)
    }

    #[test]
    fn session_ops_match_tape_ops() {
        let mut store = store_with(7);
        let w = store.normal("w", 4, 3, 0.5);
        let x = Matrix::from_vec(2, 4, vec![0.3, -1.2, 0.8, 0.1, 2.0, -0.5, 0.0, 1.5]);

        let mut tape = Tape::new();
        let xt = Forward::leaf_copy(&mut tape, &x);
        let wt = Forward::param(&mut tape, &store, w);
        let yt = Forward::matmul(&mut tape, xt, wt);
        let st = Forward::sigmoid(&mut tape, yt);
        let taped = Forward::value(&tape, st).clone();

        let mut exec = InferExec::new();
        let mut s = exec.session(&store);
        let xs = s.leaf_copy(&x);
        let ws = s.param(&store, w);
        let ys = s.matmul(xs, ws);
        let ss = s.sigmoid(ys);
        assert_eq!(s.value(ss), &taped, "backends must agree exactly");
    }

    #[test]
    fn arena_buffers_are_reused_across_sessions() {
        let store = store_with(1);
        let x = Matrix::full(8, 8, 0.25);
        let mut exec = InferExec::new();
        let count_after = |exec: &mut InferExec| {
            let mut s = exec.session(&store);
            let a = s.leaf_copy(&x);
            let b = s.leaf_copy(&x);
            let c = s.matmul(a, b);
            let d = s.gelu(c);
            let e = s.layer_norm_rows(d, 1e-5);
            let _ = s.softmax_rows(e);
            exec.buffer_count()
        };
        let first = count_after(&mut exec);
        assert!(first > 0);
        for _ in 0..5 {
            assert_eq!(
                count_after(&mut exec),
                first,
                "steady-state sessions must not grow the arena"
            );
        }
    }

    #[test]
    fn param_nodes_resolve_by_reference() {
        let mut store = store_with(3);
        let w = store.normal("w", 16, 16, 0.1);
        let mut exec = InferExec::new();
        let mut s = exec.session(&store);
        let wn = s.param(&store, w);
        // The param node's value is the store's matrix itself.
        assert!(std::ptr::eq(s.value(wn), store.value(w)));
        // And it occupies no arena buffer.
        assert_eq!(exec.buffer_count(), 0);
    }

    #[test]
    fn fused_composites_match_tape_defaults_exactly() {
        let mut store = store_with(21);
        let w = store.normal("w", 6, 5, 0.4);
        let b = store.normal("b", 1, 5, 0.2);
        let g = store.constant("g", 1, 6, 1.1);
        let bb = store.constant("gb", 1, 6, -0.3);
        let x = Matrix::from_vec(3, 6, (0..18).map(|i| (i as f32 * 0.31).sin()).collect());
        let y = Matrix::from_vec(4, 6, (0..24).map(|i| (i as f32 * 0.17).cos()).collect());

        // Tape runs the *default* composed implementations.
        let mut tape = Tape::new();
        let xt = Forward::leaf_copy(&mut tape, &x);
        let yt = Forward::leaf_copy(&mut tape, &y);
        let lin = Forward::linear_act(&mut tape, &store, xt, w, b, Act::Gelu);
        let bt = Forward::matmul_bt(&mut tape, xt, yt);
        let sm = Forward::softmax_rows_scaled(&mut tape, bt, 0.125);
        let ln = Forward::layer_norm_affine(&mut tape, &store, xt, g, bb, 1e-5);
        let want_lin = Forward::value(&tape, lin).clone();
        let want_sm = Forward::value(&tape, sm).clone();
        let want_ln = Forward::value(&tape, ln).clone();

        // The session runs the fused kernels, at several thread counts.
        for threads in [1, 2, 4] {
            let mut exec = InferExec::with_kernel_threads(threads);
            let mut s = exec.session(&store);
            let xs = s.leaf_copy(&x);
            let ys = s.leaf_copy(&y);
            let lin_s = s.linear_act(&store, xs, w, b, Act::Gelu);
            let bt_s = s.matmul_bt(xs, ys);
            let sm_s = s.softmax_rows_scaled(bt_s, 0.125);
            let ln_s = s.layer_norm_affine(&store, xs, g, bb, 1e-5);
            assert_eq!(s.value(lin_s), &want_lin, "linear_act threads={threads}");
            assert_eq!(s.value(sm_s), &want_sm, "softmax_scaled threads={threads}");
            assert_eq!(s.value(ln_s), &want_ln, "layer_norm_affine threads={threads}");
        }
    }

    #[test]
    fn packed_weights_are_cached_and_invalidate_on_mutation() {
        let mut store = store_with(5);
        let w = store.normal("w", 8, 8, 0.3);
        let x = Matrix::full(2, 8, 0.5);
        let mut exec = InferExec::new();

        let run = |exec: &mut InferExec, store: &ParamStore| {
            let mut s = exec.session(store);
            let xs = s.leaf_copy(&x);
            let ws = s.param(store, w);
            let ys = s.matmul(xs, ws);
            s.value(ys).clone()
        };

        let before = run(&mut exec, &store);
        assert_eq!(exec.packed_weight_count(), 1, "weight packed on first use");
        assert_eq!(run(&mut exec, &store), before, "cached pack reused");
        assert_eq!(exec.packed_weight_count(), 1);

        // Mutating the weight must invalidate the pack.
        store.value_mut(w).as_mut_slice()[0] += 1.0;
        let after = run(&mut exec, &store);
        assert_ne!(after, before, "stale pack served after weight update");
        assert_eq!(after, x.matmul(store.value(w)), "repacked to current value");
    }

    #[test]
    fn gather_and_leaf_helpers_agree_with_defaults() {
        let store = store_with(4);
        let src = Matrix::from_vec(4, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let rows: Vec<&[f32]> = vec![&[1.0, 2.0], &[9.0, 9.0]];

        let mut tape = Tape::new();
        let xt = Forward::leaf_copy(&mut tape, &src);
        let gt = Forward::gather_rows(&mut tape, xt, &[2, 0, 2]);
        let lt = Forward::leaf_rows(&mut tape, &rows);
        let lg = Forward::leaf_gather(&mut tape, &src, &[3, 1]);
        let expected_g = Forward::value(&tape, gt).clone();
        let expected_l = Forward::value(&tape, lt).clone();
        let expected_lg = Forward::value(&tape, lg).clone();

        let mut exec = InferExec::new();
        let mut s = exec.session(&store);
        let xs = s.leaf_copy(&src);
        let gs = s.gather_rows(xs, &[2, 0, 2]);
        assert_eq!(s.value(gs), &expected_g);
        let ls = s.leaf_rows(&rows);
        assert_eq!(s.value(ls), &expected_l);
        let lgs = s.leaf_gather(&src, &[3, 1]);
        assert_eq!(s.value(lgs), &expected_lg);
    }
}
