//! # taste-nn
//!
//! A from-scratch, dependency-light deep learning stack sufficient to train
//! and serve the paper's ADTD model and its TURL/Doduo baseline analogs on
//! CPU:
//!
//! * [`matrix`] — dense row-major `f32` matrices with the raw kernels
//!   (matmul, transpose, elementwise maps).
//! * [`kernels`] — the lane-vectorized compute kernels under the matrix
//!   ops: 8-wide output-column lanes, packed weight panels ([`PackedB`]),
//!   fused matmul+bias+activation / scaled-softmax / affine-layer-norm
//!   row kernels, and row-parallel drivers — all bit-identical to the
//!   scalar reference order.
//! * [`pool`] — the persistent scoped worker pool behind row-parallel
//!   kernels ([`KernelPool`]), deterministic by construction.
//! * [`tape`] — reverse-mode automatic differentiation over matrices.
//!   A [`tape::Tape`] records the forward computation; [`tape::Tape::backward`]
//!   replays it in reverse, producing gradients for every leaf.
//! * [`exec`] — the execution-backend split: the [`exec::Forward`] trait
//!   abstracts the forward op set so the same model code runs on the
//!   recording [`tape::Tape`] (training) or the tape-free, buffer-reusing
//!   [`exec::InferExec`] (serving).
//! * [`params`] — named trainable parameters with Adam state, plus
//!   Xavier/normal initialization.
//! * [`modules`] — Linear, LayerNorm, Embedding, multi-head (cross-)
//!   attention, feed-forward, and full post-LN transformer encoder layers.
//! * [`losses`] — multi-label BCE-with-logits, softmax cross-entropy for
//!   MLM pre-training, and the paper's automatic weighted multi-task loss.
//! * [`optim`] — Adam with bias correction, global-norm gradient clipping,
//!   and warmup/decay learning-rate schedules.
//! * [`checkpoint`] — versioned, CRC32C-framed, atomically-written
//!   full-state training checkpoints (values + Adam moments + LR
//!   position + loop cursor + RNG state) with rotation and corrupt-file
//!   quarantine, enabling bit-identical resume after a crash.
//! * [`guard`] — numerical-fault containment: NaN/Inf sentinels and a
//!   loss-spike detector that skip poisoned steps, escalate to
//!   checkpoint rollback, and report a [`guard::TrainingHealth`].
//!
//! The substitution rationale (this stack in place of PyTorch + CUDA) is
//! documented in the workspace `DESIGN.md`.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod exec;
pub mod guard;
pub mod kernels;
pub mod losses;
pub mod matrix;
pub mod modules;
pub mod optim;
pub mod params;
pub mod pool;
pub mod summary;
pub mod tape;

pub use checkpoint::{CheckpointPolicy, CheckpointStore, TrainCheckpoint, TrainProgress};
pub use exec::{ExecSession, Forward, InferExec};
pub use guard::{Anomaly, AnomalyDetector, AnomalyPolicy, StepVerdict, TrainingHealth};
pub use kernels::{Act, PackedB};
pub use matrix::Matrix;
pub use optim::{Adam, AdamConfig, LrSchedule};
pub use params::{ParamId, ParamStore};
pub use pool::KernelPool;
pub use tape::{NodeId, Tape};
