//! Versioned, torn-write-safe full-state training checkpoints.
//!
//! A checkpoint captures *everything* a training loop needs to resume
//! bit-identically: parameter values, Adam first/second moments and
//! step count, the LR-schedule position, the epoch/batch cursor, the
//! shuffle order and shuffle-RNG state, the loss history, and the
//! anomaly-detector state. The serving side already has this property
//! for detection runs (the framework journal); this module gives the
//! training side the same guarantee with the same integrity primitive.
//!
//! # On-disk format
//!
//! Two [`taste_core::checksum`] CRC32C-framed records, back to back:
//!
//! 1. a JSON *manifest* — format tag, format version, optimizer state,
//!    loop progress, and a parameter directory (name, shape, whether
//!    Adam moments follow);
//! 2. a raw little-endian `f32` *blob* — each parameter's values, then
//!    its `m` and `v` moments when present, in directory order.
//!
//! Values travel as raw bits, not JSON text, for two reasons: exact
//! bit preservation (JSON round-trips can legally reformat floats) and
//! tolerance for non-finite moments without inventing an encoding.
//! Any torn tail, bit flip, wrong tag, or directory/blob disagreement
//! decodes to [`TasteError::Corrupt`] — never a panic — so the loader
//! can quarantine the file and fall back to an older checkpoint.
//!
//! # Atomicity
//!
//! [`TrainCheckpoint::write_atomic`] writes to a sibling temp file,
//! fsyncs it, renames it over the target, and fsyncs the directory
//! (best effort), so a crash mid-save leaves either the old checkpoint
//! or the new one — never a half-written hybrid under the real name.

use crate::guard::{AnomalyDetector, TrainingHealth};
use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::params::ParamStore;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use taste_core::checksum::{decode_record, encode_record, DecodeStep};
use taste_core::rng::SplitMix64Rng;
use taste_core::TasteError;

/// Bumped whenever the on-disk layout changes incompatibly.
pub const CHECKPOINT_VERSION: u32 = 1;

const FORMAT_TAG: &str = "taste-train-ckpt";
/// Extension of live checkpoint files (`ckpt-<step>.tck`).
pub const FILE_EXT: &str = "tck";
const TEMP_EXT: &str = "tck.tmp";
/// Extension corrupt checkpoints are renamed to when quarantined.
pub const QUARANTINE_EXT: &str = "tck.corrupt";

/// Where a training loop is in its epoch/batch/RNG stream.
///
/// The cursor convention: `step` counts *batches processed* (applied
/// or skipped), `batch` is the next batch index within `epoch`, and
/// `batch == 0` always means "epoch not started yet" — the loop
/// shuffles `order` with `rng` exactly at that point, so a checkpoint
/// taken at an epoch boundary resumes through the same shuffle the
/// uninterrupted run performed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainProgress {
    /// Batches processed so far (monotone; never rewound by skips).
    pub step: u64,
    /// Current epoch, 0-based.
    pub epoch: u64,
    /// Next batch index within the epoch.
    pub batch: u64,
    /// The loop's RNG (shuffling, subsampling, masking, dropout).
    pub rng: SplitMix64Rng,
    /// The current epoch's shuffled item order.
    pub order: Vec<u32>,
    /// Mean loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Loss sum accumulated over the current epoch's applied steps.
    pub epoch_accum: f64,
    /// Applied steps within the current epoch.
    pub steps_in_epoch: u64,
    /// Loss of every applied step across the whole run.
    pub step_losses: Vec<f32>,
    /// Loss-EMA and sentinel state.
    pub detector: AnomalyDetector,
    /// Anomaly and checkpoint counters so far.
    pub health: TrainingHealth,
}

impl TrainProgress {
    /// Progress at the very start of a run over `n_items` items.
    pub fn fresh(n_items: usize, seed: u64) -> TrainProgress {
        TrainProgress {
            step: 0,
            epoch: 0,
            batch: 0,
            rng: SplitMix64Rng::new(seed),
            order: (0..n_items as u32).collect(),
            epoch_losses: Vec::new(),
            epoch_accum: 0.0,
            steps_in_epoch: 0,
            step_losses: Vec::new(),
            detector: AnomalyDetector::default(),
            health: TrainingHealth::default(),
        }
    }

    /// Number of batches one epoch spans at the given batch size.
    pub fn batches_per_epoch(&self, batch_size: usize) -> u64 {
        self.order.len().div_ceil(batch_size.max(1)) as u64
    }

    /// Records an applied step's loss into the epoch and run histories.
    pub fn record_loss(&mut self, loss: f32) {
        self.epoch_accum += f64::from(loss);
        self.steps_in_epoch += 1;
        self.step_losses.push(loss);
    }

    /// Advances the batch cursor, finalizing the epoch's mean loss and
    /// rolling to the next epoch at the boundary.
    pub fn advance(&mut self, batches_per_epoch: u64) {
        self.step += 1;
        self.batch += 1;
        if self.batch >= batches_per_epoch.max(1) {
            self.epoch_losses
                .push((self.epoch_accum / self.steps_in_epoch.max(1) as f64) as f32);
            self.epoch_accum = 0.0;
            self.steps_in_epoch = 0;
            self.epoch += 1;
            self.batch = 0;
        }
    }
}

#[derive(Serialize, Deserialize)]
struct DirEntry {
    name: String,
    rows: usize,
    cols: usize,
    has_moments: bool,
}

#[derive(Serialize, Deserialize)]
struct Manifest {
    format: String,
    version: u32,
    opt: Adam,
    progress: TrainProgress,
    dir: Vec<DirEntry>,
}

#[derive(Debug)]
struct ParamState {
    name: String,
    value: Matrix,
    moments: Option<(Matrix, Matrix)>,
}

/// A fully materialized training checkpoint.
#[derive(Debug)]
pub struct TrainCheckpoint {
    /// Optimizer state: hyperparameters (including any rolled-back
    /// learning rate), schedule, and step count.
    pub opt: Adam,
    /// Loop progress (cursor, RNG, histories, detector, health).
    pub progress: TrainProgress,
    params: Vec<ParamState>,
}

impl TrainCheckpoint {
    /// Snapshots the full training state.
    pub fn capture(store: &ParamStore, opt: &Adam, progress: &TrainProgress) -> TrainCheckpoint {
        let params = store
            .ids()
            .map(|id| ParamState {
                name: store.name(id).to_owned(),
                value: store.value(id).clone(),
                moments: store.adam_moments(id).map(|(m, v)| (m.clone(), v.clone())),
            })
            .collect();
        TrainCheckpoint { opt: opt.clone(), progress: progress.clone(), params }
    }

    /// Restores parameter values and Adam state into `store` and `opt`,
    /// returning the loop progress to resume from. Existing optimizer
    /// moments in `store` are cleared first, so parameters the
    /// checkpoint has no moments for do not keep stale momentum.
    ///
    /// # Errors
    /// [`TasteError::Corrupt`] when the checkpoint does not cover the
    /// store exactly (count, name, or shape disagreement).
    pub fn restore(&self, store: &mut ParamStore, opt: &mut Adam) -> Result<TrainProgress, TasteError> {
        if self.params.len() != store.len() {
            return Err(TasteError::corrupt(format!(
                "checkpoint holds {} params, store expects {}",
                self.params.len(),
                store.len()
            )));
        }
        store.reset_optimizer_state();
        for p in &self.params {
            let id = store
                .id_by_name(&p.name)
                .ok_or_else(|| TasteError::corrupt(format!("checkpoint param {:?} not in store", p.name)))?;
            if store.value(id).shape() != p.value.shape() {
                return Err(TasteError::corrupt(format!(
                    "param {:?}: checkpoint shape {:?} != store shape {:?}",
                    p.name,
                    p.value.shape(),
                    store.value(id).shape()
                )));
            }
            *store.value_mut(id) = p.value.clone();
            if let Some((m, v)) = &p.moments {
                store.restore_adam_moments(id, m.clone(), v.clone())?;
            }
        }
        store.zero_grads();
        *opt = self.opt.clone();
        Ok(self.progress.clone())
    }

    /// Serializes to the two-record framed binary format.
    pub fn encode(&self) -> Vec<u8> {
        let dir = self
            .params
            .iter()
            .map(|p| DirEntry {
                name: p.name.clone(),
                rows: p.value.rows(),
                cols: p.value.cols(),
                has_moments: p.moments.is_some(),
            })
            .collect();
        let manifest = Manifest {
            format: FORMAT_TAG.to_owned(),
            version: CHECKPOINT_VERSION,
            opt: self.opt.clone(),
            progress: self.progress.clone(),
            dir,
        };
        let manifest_json = serde_json::to_vec(&manifest).expect("manifest is always serializable");
        let mut blob = Vec::new();
        for p in &self.params {
            push_f32s(&mut blob, p.value.as_slice());
            if let Some((m, v)) = &p.moments {
                push_f32s(&mut blob, m.as_slice());
                push_f32s(&mut blob, v.as_slice());
            }
        }
        let mut out = encode_record(&manifest_json);
        out.extend_from_slice(&encode_record(&blob));
        out
    }

    /// Decodes a checkpoint from bytes.
    ///
    /// # Errors
    /// [`TasteError::Corrupt`] on any torn tail, checksum failure,
    /// unknown format tag or version, or directory/blob disagreement.
    /// Never panics on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<TrainCheckpoint, TasteError> {
        let (manifest_bytes, used) = take_record(bytes, "manifest")?;
        let manifest: Manifest = serde_json::from_slice(manifest_bytes)
            .map_err(|e| TasteError::corrupt(format!("checkpoint manifest: {e}")))?;
        if manifest.format != FORMAT_TAG {
            return Err(TasteError::corrupt(format!(
                "not a training checkpoint (format tag {:?})",
                manifest.format
            )));
        }
        if manifest.version != CHECKPOINT_VERSION {
            return Err(TasteError::corrupt(format!(
                "unsupported checkpoint version {} (this build reads {})",
                manifest.version, CHECKPOINT_VERSION
            )));
        }
        let (blob, blob_used) = take_record(&bytes[used..], "blob")?;
        if used + blob_used != bytes.len() {
            return Err(TasteError::corrupt(format!(
                "{} trailing bytes after checkpoint records",
                bytes.len() - used - blob_used
            )));
        }
        let mut off = 0usize;
        let mut params = Vec::with_capacity(manifest.dir.len());
        for e in &manifest.dir {
            let value = take_matrix(blob, &mut off, e.rows, e.cols, &e.name)?;
            let moments = if e.has_moments {
                let m = take_matrix(blob, &mut off, e.rows, e.cols, &e.name)?;
                let v = take_matrix(blob, &mut off, e.rows, e.cols, &e.name)?;
                Some((m, v))
            } else {
                None
            };
            params.push(ParamState { name: e.name.clone(), value, moments });
        }
        if off != blob.len() {
            return Err(TasteError::corrupt(format!(
                "checkpoint blob holds {} bytes beyond its directory",
                blob.len() - off
            )));
        }
        Ok(TrainCheckpoint { opt: manifest.opt, progress: manifest.progress, params })
    }

    /// Writes the checkpoint durably: temp file, fsync, rename over
    /// `path`, best-effort directory fsync.
    ///
    /// # Errors
    /// [`TasteError::Serde`] wrapping the underlying I/O failure.
    pub fn write_atomic(&self, path: &Path) -> Result<(), TasteError> {
        let tmp = path.with_extension(TEMP_EXT);
        let io = |e: std::io::Error| TasteError::Serde(format!("checkpoint {}: {e}", path.display()));
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(&self.encode()).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, path).map_err(io)?;
        if let Some(parent) = path.parent() {
            if let Ok(d) = fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    /// [`TasteError::Serde`] on I/O failure, [`TasteError::Corrupt`] on
    /// a damaged file.
    pub fn read(path: &Path) -> Result<TrainCheckpoint, TasteError> {
        let bytes = fs::read(path)
            .map_err(|e| TasteError::Serde(format!("checkpoint {}: {e}", path.display())))?;
        TrainCheckpoint::decode(&bytes)
    }
}

fn push_f32s(blob: &mut Vec<u8>, values: &[f32]) {
    for v in values {
        blob.extend_from_slice(&v.to_le_bytes());
    }
}

fn take_record<'a>(bytes: &'a [u8], what: &str) -> Result<(&'a [u8], usize), TasteError> {
    match decode_record(bytes) {
        DecodeStep::Record { payload, consumed } => Ok((payload, consumed)),
        DecodeStep::CorruptPayload { .. } => {
            Err(TasteError::corrupt(format!("checkpoint {what} failed its checksum")))
        }
        DecodeStep::TornTail => Err(TasteError::corrupt(format!("torn checkpoint {what} record"))),
    }
}

fn take_matrix(blob: &[u8], off: &mut usize, rows: usize, cols: usize, name: &str) -> Result<Matrix, TasteError> {
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| TasteError::corrupt(format!("param {name:?}: shape overflow")))?;
    let need = n
        .checked_mul(4)
        .ok_or_else(|| TasteError::corrupt(format!("param {name:?}: size overflow")))?;
    let end = off
        .checked_add(need)
        .filter(|&e| e <= blob.len())
        .ok_or_else(|| TasteError::corrupt(format!("param {name:?}: blob exhausted")))?;
    let data = blob[*off..end]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    *off = end;
    Ok(Matrix::from_vec(rows, cols, data))
}

/// How often a resumable loop checkpoints and how many files it keeps.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Save after every `n` processed steps; `0` disables periodic
    /// saves (rollback then degrades to skip-and-reduce-LR).
    pub every_n_steps: u64,
    /// Checkpoints retained on disk; older ones are pruned. Minimum 1.
    pub keep_last_k: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every_n_steps: 25, keep_last_k: 2 }
    }
}

impl CheckpointPolicy {
    /// Whether a save is due after `step` processed steps.
    pub fn due(&self, step: u64) -> bool {
        self.every_n_steps > 0 && step > 0 && step.is_multiple_of(self.every_n_steps)
    }
}

/// A rotating directory of checkpoint files with corrupt-file
/// quarantine: files are named by step, saves prune beyond
/// `keep_last_k`, and loads walk newest-first, renaming any file that
/// fails to decode to `*.tck.corrupt` and falling back to the next.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    policy: CheckpointPolicy,
}

/// What [`CheckpointStore::load_latest`] found.
pub struct LoadOutcome {
    /// The newest checkpoint that decoded cleanly, with its path.
    pub loaded: Option<(TrainCheckpoint, PathBuf)>,
    /// Corrupt files quarantined while searching.
    pub quarantined: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    /// [`TasteError::Serde`] when the directory cannot be created.
    pub fn new(dir: &Path, policy: CheckpointPolicy) -> Result<CheckpointStore, TasteError> {
        fs::create_dir_all(dir)
            .map_err(|e| TasteError::Serde(format!("checkpoint dir {}: {e}", dir.display())))?;
        Ok(CheckpointStore { dir: dir.to_owned(), policy })
    }

    /// The configured cadence/retention policy.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// The file path a checkpoint at `step` is stored under.
    pub fn path_for(&self, step: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{step:012}.{FILE_EXT}"))
    }

    /// Checkpoint files present, as `(step, path)` sorted by step.
    fn list(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.dir) else { return Vec::new() };
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?;
                let step: u64 = name
                    .strip_prefix("ckpt-")?
                    .strip_suffix(&format!(".{FILE_EXT}"))?
                    .parse()
                    .ok()?;
                Some((step, path))
            })
            .collect();
        found.sort_unstable_by_key(|(step, _)| *step);
        found
    }

    /// Saves a checkpoint under its step's file name and prunes files
    /// beyond `keep_last_k`.
    ///
    /// # Errors
    /// [`TasteError::Serde`] on I/O failure.
    pub fn save(&self, checkpoint: &TrainCheckpoint) -> Result<PathBuf, TasteError> {
        let path = self.path_for(checkpoint.progress.step);
        checkpoint.write_atomic(&path)?;
        let mut files = self.list();
        while files.len() > self.policy.keep_last_k.max(1) {
            let (_, old) = files.remove(0);
            let _ = fs::remove_file(old);
        }
        Ok(path)
    }

    /// Loads the newest intact checkpoint, quarantining corrupt files
    /// encountered on the way (renamed to `*.{QUARANTINE_EXT}` so they
    /// are kept for inspection but never retried).
    ///
    /// # Errors
    /// Never fails on corrupt *contents* — that is the fallback path —
    /// only surfaces nothing when no intact checkpoint exists.
    pub fn load_latest(&self) -> Result<LoadOutcome, TasteError> {
        let mut quarantined = 0;
        for (_, path) in self.list().into_iter().rev() {
            match TrainCheckpoint::read(&path) {
                Ok(checkpoint) => {
                    return Ok(LoadOutcome { loaded: Some((checkpoint, path)), quarantined })
                }
                Err(_) => {
                    let _ = fs::rename(&path, path.with_extension(QUARANTINE_EXT));
                    quarantined += 1;
                }
            }
        }
        Ok(LoadOutcome { loaded: None, quarantined })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{AdamConfig, LrSchedule};

    fn toy_state() -> (ParamStore, Adam, TrainProgress) {
        let mut store = ParamStore::new(3);
        store.normal("enc.w", 4, 4, 0.1);
        store.constant("head.b", 1, 4, 0.5);
        let mut opt = Adam::new(
            AdamConfig { lr: 0.01, ..Default::default() },
            LrSchedule::LinearWarmupDecay { warmup: 4, total: 40 },
        );
        // A few real steps so moments and step counts are non-trivial.
        for id in store.ids().collect::<Vec<_>>() {
            let (rows, cols) = store.value(id).shape();
            store.grad_mut(id).axpy(1.0, &Matrix::full(rows, cols, 0.3));
        }
        opt.step(&mut store);
        let mut progress = TrainProgress::fresh(10, 7);
        progress.record_loss(0.8);
        progress.advance(5);
        (store, opt, progress)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (store, opt, progress) = toy_state();
        let ck = TrainCheckpoint::capture(&store, &opt, &progress);
        let back = TrainCheckpoint::decode(&ck.encode()).unwrap();

        let mut store2 = ParamStore::new(99);
        store2.normal("enc.w", 4, 4, 0.1);
        store2.constant("head.b", 1, 4, 0.5);
        let mut opt2 = Adam::new(AdamConfig::default(), LrSchedule::Constant);
        let restored = back.restore(&mut store2, &mut opt2).unwrap();

        assert_eq!(restored, progress);
        assert_eq!(opt2.steps(), opt.steps());
        assert_eq!(opt2.current_lr(), opt.current_lr());
        for id in store.ids() {
            let id2 = store2.id_by_name(store.name(id)).unwrap();
            let a: Vec<u32> = store.value(id).as_slice().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = store2.value(id2).as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "values of {}", store.name(id));
            let (m1, v1) = store.adam_moments(id).unwrap();
            let (m2, v2) = store2.adam_moments(id2).unwrap();
            assert_eq!(m1, m2);
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn non_finite_moments_survive_the_blob() {
        // Raw-bits encoding must carry NaN/Inf moments verbatim; JSON
        // would have rejected them.
        let (mut store, opt, progress) = toy_state();
        let id = store.id_by_name("enc.w").unwrap();
        let mut m = Matrix::full(4, 4, f32::NAN);
        m.as_mut_slice()[3] = f32::INFINITY;
        store.restore_adam_moments(id, m, Matrix::zeros(4, 4)).unwrap();
        let back = TrainCheckpoint::decode(&TrainCheckpoint::capture(&store, &opt, &progress).encode()).unwrap();
        let _ = back; // decoding alone is the assertion: no rejection, no panic
    }

    #[test]
    fn wrong_tag_and_version_are_corrupt() {
        let mut bytes = encode_record(br#"{"format":"not-a-checkpoint"}"#);
        bytes.extend_from_slice(&encode_record(b""));
        assert!(matches!(TrainCheckpoint::decode(&bytes), Err(TasteError::Corrupt(_))));
        let garbage = encode_record(b"\x00\x01\x02");
        assert!(matches!(TrainCheckpoint::decode(&garbage), Err(TasteError::Corrupt(_))));
    }

    #[test]
    fn rotation_prunes_and_load_picks_newest() {
        let dir = std::env::temp_dir().join(format!("taste-ckpt-rot-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cs = CheckpointStore::new(&dir, CheckpointPolicy { every_n_steps: 1, keep_last_k: 2 }).unwrap();
        let (store, opt, mut progress) = toy_state();
        for step in [5, 10, 15] {
            progress.step = step;
            cs.save(&TrainCheckpoint::capture(&store, &opt, &progress)).unwrap();
        }
        assert_eq!(cs.list().len(), 2, "oldest file pruned");
        let outcome = cs.load_latest().unwrap();
        let (ck, path) = outcome.loaded.unwrap();
        assert_eq!(ck.progress.step, 15);
        assert_eq!(path, cs.path_for(15));
        assert_eq!(outcome.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_and_quarantines() {
        let dir = std::env::temp_dir().join(format!("taste-ckpt-quar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cs = CheckpointStore::new(&dir, CheckpointPolicy::default()).unwrap();
        let (store, opt, mut progress) = toy_state();
        for step in [10, 20] {
            progress.step = step;
            cs.save(&TrainCheckpoint::capture(&store, &opt, &progress)).unwrap();
        }
        // Flip one bit in the newest file.
        let newest = cs.path_for(20);
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        fs::write(&newest, &bytes).unwrap();

        let outcome = cs.load_latest().unwrap();
        let (ck, _) = outcome.loaded.unwrap();
        assert_eq!(ck.progress.step, 10, "fell back to the previous good checkpoint");
        assert_eq!(outcome.quarantined, 1);
        assert!(!newest.exists(), "corrupt file renamed away");
        assert!(newest.with_extension(QUARANTINE_EXT).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_cadence() {
        let p = CheckpointPolicy { every_n_steps: 4, keep_last_k: 2 };
        assert!(!p.due(0));
        assert!(!p.due(3));
        assert!(p.due(4));
        assert!(p.due(8));
        assert!(!CheckpointPolicy { every_n_steps: 0, keep_last_k: 1 }.due(100));
    }

    #[test]
    fn progress_cursor_rolls_epochs() {
        let mut p = TrainProgress::fresh(10, 1);
        assert_eq!(p.batches_per_epoch(4), 3);
        for _ in 0..3 {
            p.record_loss(0.5);
            p.advance(3);
        }
        assert_eq!(p.epoch, 1);
        assert_eq!(p.batch, 0);
        assert_eq!(p.step, 3);
        assert_eq!(p.epoch_losses, vec![0.5]);
        assert_eq!(p.steps_in_epoch, 0);
        assert_eq!(p.step_losses.len(), 3);
    }
}
