//! Optimizers and learning-rate schedules.

use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabilizer.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables it.
    pub weight_decay: f32,
    /// Global-norm gradient clip; 0 disables clipping.
    pub clip_norm: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: 1.0,
        }
    }
}

/// Learning-rate schedule applied on top of the base rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Linear warmup over `warmup` steps, then linear decay to zero at
    /// `total` steps (the BERT fine-tuning schedule).
    LinearWarmupDecay {
        /// Steps of linear warmup.
        warmup: usize,
        /// Total training steps.
        total: usize,
    },
}

impl LrSchedule {
    /// Multiplier in `[0, 1]` for training step `step` (0-based).
    pub fn factor(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::LinearWarmupDecay { warmup, total } => {
                let step = step as f32;
                let warmup = warmup.max(1) as f32;
                let total = total.max(1) as f32;
                if step < warmup {
                    (step + 1.0) / warmup
                } else {
                    ((total - step) / (total - warmup).max(1.0)).clamp(0.0, 1.0)
                }
            }
        }
    }
}

/// Adam optimizer with bias correction, optional decoupled weight decay,
/// and optional global-norm gradient clipping.
///
/// The whole struct (hyperparameters, schedule, and step counter)
/// serializes, so a checkpointed run resumes with the same
/// [`Adam::steps`] and [`Adam::current_lr`] instead of silently
/// restarting warmup. The per-parameter moment buffers live in the
/// [`ParamStore`] and are checkpointed alongside the values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Hyperparameters.
    pub config: AdamConfig,
    /// Schedule on top of `config.lr`.
    pub schedule: LrSchedule,
    step: usize,
}

impl Adam {
    /// Creates an optimizer at step 0.
    pub fn new(config: AdamConfig, schedule: LrSchedule) -> Adam {
        Adam { config, schedule, step: 0 }
    }

    /// Number of completed steps.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// The learning rate that the *next* step will use.
    pub fn current_lr(&self) -> f32 {
        self.config.lr * self.schedule.factor(self.step)
    }

    /// Applies one update to every parameter from its accumulated
    /// gradient, then zeroes the gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        let c = self.config;
        if c.clip_norm > 0.0 {
            let norm = store.grad_global_norm();
            if norm > c.clip_norm {
                store.scale_grads(c.clip_norm / norm);
            }
        }
        let lr = self.current_lr();
        let t = (self.step + 1) as i32;
        let bc1 = 1.0 - c.beta1.powi(t);
        let bc2 = 1.0 - c.beta2.powi(t);
        let ids: Vec<_> = store.ids().collect();
        for id in ids {
            let (value, m, v, grad) = store.adam_state(id);
            for i in 0..value.len() {
                let g = grad.as_slice()[i];
                let mi = c.beta1 * m.as_slice()[i] + (1.0 - c.beta1) * g;
                let vi = c.beta2 * v.as_slice()[i] + (1.0 - c.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let mut update = mhat / (vhat.sqrt() + c.eps);
                if c.weight_decay > 0.0 {
                    update += c.weight_decay * value.as_slice()[i];
                }
                value.as_mut_slice()[i] -= lr * update;
            }
        }
        store.zero_grads();
        self.step += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::Tape;

    /// Adam must minimize a convex quadratic `(w - 3)^2` quickly.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new(0);
        let w = store.constant("w", 1, 1, 0.0);
        let mut opt = Adam::new(
            AdamConfig { lr: 0.1, ..Default::default() },
            LrSchedule::Constant,
        );
        for _ in 0..200 {
            let mut tape = Tape::new();
            let wn = tape.param(&store, w);
            let target = tape.leaf(Matrix::scalar(-3.0));
            let diff = tape.add(wn, target);
            let sq = tape.square(diff);
            let loss = tape.sum(sq);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).item() - 3.0).abs() < 0.05);
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new(0);
        let w = store.constant("w", 1, 2, 0.0);
        store.grad_mut(w).axpy(1.0, &Matrix::from_vec(1, 2, vec![300.0, 400.0]));
        let mut opt = Adam::new(
            AdamConfig { lr: 1.0, clip_norm: 1.0, ..Default::default() },
            LrSchedule::Constant,
        );
        // Pre-clip norm is 500; clip rescales to 1.
        opt.step(&mut store);
        // First Adam step magnitude is ~lr regardless, but the moments
        // reflect the clipped gradient; verify values are finite/sane.
        assert!(store.value(w).all_finite());
        assert!(store.value(w).as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-4));
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut store = ParamStore::new(0);
        let w = store.constant("w", 1, 1, 5.0);
        let mut opt = Adam::new(
            AdamConfig { lr: 0.1, weight_decay: 0.1, clip_norm: 0.0, ..Default::default() },
            LrSchedule::Constant,
        );
        for _ in 0..50 {
            // Zero task gradient: only decay acts.
            opt.step(&mut store);
        }
        assert!(store.value(w).item() < 5.0);
    }

    #[test]
    fn schedule_warmup_and_decay_shape() {
        let s = LrSchedule::LinearWarmupDecay { warmup: 10, total: 100 };
        assert!(s.factor(0) > 0.0);
        assert!(s.factor(4) < s.factor(9));
        assert!((s.factor(9) - 1.0).abs() < 1e-6);
        assert!(s.factor(50) < 1.0);
        assert!(s.factor(99) < s.factor(50));
        assert_eq!(s.factor(1000), 0.0);
        assert_eq!(LrSchedule::Constant.factor(123), 1.0);
    }

    #[test]
    fn serialized_optimizer_keeps_step_and_lr_position() {
        let mut store = ParamStore::new(0);
        let w = store.constant("w", 1, 1, 0.0);
        let mut opt = Adam::new(
            AdamConfig { lr: 0.5, ..Default::default() },
            LrSchedule::LinearWarmupDecay { warmup: 10, total: 100 },
        );
        for _ in 0..7 {
            store.grad_mut(w).axpy(1.0, &Matrix::scalar(0.3));
            opt.step(&mut store);
        }
        let restored: Adam = serde_json::from_str(&serde_json::to_string(&opt).unwrap()).unwrap();
        assert_eq!(restored.steps(), 7);
        assert_eq!(restored.current_lr(), opt.current_lr());
        // Mid-warmup, so the factor must be strictly below 1.
        assert!(restored.current_lr() < 0.5);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new(0);
        let w = store.constant("w", 1, 1, 0.0);
        store.grad_mut(w).axpy(1.0, &Matrix::scalar(1.0));
        let mut opt = Adam::new(AdamConfig::default(), LrSchedule::Constant);
        opt.step(&mut store);
        assert_eq!(store.grad(w).item(), 0.0);
    }
}
