//! Loss builders: multi-label BCE, MLM cross-entropy, and the paper's
//! automatic weighted multi-task loss (§4.4).

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::{NodeId, Tape};

/// Multi-label binary cross-entropy over a batch, matching §4.3:
/// the per-decision BCE terms are summed over columns and types, then
/// divided by the mini-batch size `b` (number of columns).
pub fn multilabel_bce(tape: &mut Tape, logits: NodeId, targets: Matrix, batch: usize) -> NodeId {
    assert!(batch > 0, "batch size must be positive");
    let sum = tape.bce_with_logits_sum(logits, targets);
    tape.scale(sum, 1.0 / batch as f32)
}

/// Mean masked-token cross-entropy for MLM pre-training: `logits` holds
/// one row per *masked* position, `targets` the original token ids.
pub fn mlm_cross_entropy(tape: &mut Tape, logits: NodeId, targets: Vec<usize>) -> NodeId {
    let n = targets.len().max(1);
    let sum = tape.softmax_xent_sum(logits, targets);
    tape.scale(sum, 1.0 / n as f32)
}

/// The automatic weighted loss of §4.4 with learnable per-task weights:
///
/// `L = Σ_i  L_i / (2 w_i²) + ln(1 + w_i²)`
///
/// The squared weight keeps the combination positive; the `ln` term
/// regularizes the weights away from infinity. Weights are ordinary
/// trainable parameters (a `[1, k]` row), created by
/// [`AutomaticWeightedLoss::new`].
#[derive(Debug, Clone, Copy)]
pub struct AutomaticWeightedLoss {
    /// The `[1, k]` weight row parameter.
    pub weights: ParamId,
    /// Number of tasks `k`.
    pub tasks: usize,
}

impl AutomaticWeightedLoss {
    /// Registers the weight parameter for `tasks` tasks. Weights start at
    /// `1/√2`, so each task's initial *effective* weight `1/(2w²)` is 1 —
    /// matching the gradient scale of single-task training (Liebel &
    /// Körner initialize at 1, which halves every task's gradient; with
    /// few fine-tuning epochs that start noticeably slows convergence).
    pub fn new(store: &mut ParamStore, name: &str, tasks: usize) -> AutomaticWeightedLoss {
        assert!(tasks > 0, "need at least one task");
        AutomaticWeightedLoss {
            weights: store.constant(name, 1, tasks, std::f32::consts::FRAC_1_SQRT_2),
            tasks,
        }
    }

    /// Combines per-task scalar losses into the weighted total.
    ///
    /// # Panics
    /// Panics when `losses.len() != tasks`.
    pub fn combine(&self, tape: &mut Tape, store: &ParamStore, losses: &[NodeId]) -> NodeId {
        assert_eq!(losses.len(), self.tasks, "expected {} task losses", self.tasks);
        let w = tape.param(store, self.weights);
        let mut total: Option<NodeId> = None;
        for (i, &loss) in losses.iter().enumerate() {
            let wi = tape.slice_cols(w, i, 1);
            let wi2 = tape.square(wi);
            let inv = tape.recip(wi2);
            let half_inv = tape.scale(inv, 0.5);
            let weighted = tape.mul(loss, half_inv);
            let reg = tape.ln1p(wi2);
            let term = tape.add(weighted, reg);
            total = Some(match total {
                Some(acc) => tape.add(acc, term),
                None => term,
            });
        }
        total.expect("at least one task")
    }

    /// Current effective weight `1/(2 w_i²)` of task `i` (for reporting).
    pub fn effective_weight(&self, store: &ParamStore, i: usize) -> f32 {
        let w = store.value(self.weights).get(0, i);
        1.0 / (2.0 * w * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_scale_matches_batch_division() {
        let mut tape = Tape::new();
        let z = tape.leaf(Matrix::from_vec(2, 2, vec![0.0, 0.0, 0.0, 0.0]));
        let y = Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let loss = multilabel_bce(&mut tape, z, y, 2);
        // BCE at logit 0 is ln 2 per decision; 4 decisions / batch 2.
        let expected = 4.0 * std::f32::consts::LN_2 / 2.0;
        assert!((tape.value(loss).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn mlm_loss_is_mean_over_masked_positions() {
        let mut tape = Tape::new();
        // Uniform logits over 4 classes: NLL = ln 4 per position.
        let z = tape.leaf(Matrix::zeros(3, 4));
        let loss = mlm_cross_entropy(&mut tape, z, vec![0, 1, 2]);
        let expected = (4.0f32).ln();
        assert!((tape.value(loss).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn awl_at_unit_weights_halves_losses_plus_ln2() {
        let mut store = ParamStore::new(0);
        let awl = AutomaticWeightedLoss::new(&mut store, "awl", 2);
        // Force the classical w = 1 initialization for this check.
        *store.value_mut(awl.weights) = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let mut tape = Tape::new();
        let l1 = tape.leaf(Matrix::scalar(2.0));
        let l2 = tape.leaf(Matrix::scalar(4.0));
        let total = awl.combine(&mut tape, &store, &[l1, l2]);
        // At w=1: L/2 + ln 2 each = 1 + 3 + 2 ln 2.
        let expected = 1.0 + 2.0 + 2.0 * std::f32::consts::LN_2;
        assert!((tape.value(total).item() - expected).abs() < 1e-5);
        assert!((awl.effective_weight(&store, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn awl_initializes_at_unit_effective_weight() {
        let mut store = ParamStore::new(0);
        let awl = AutomaticWeightedLoss::new(&mut store, "awl", 2);
        assert!((awl.effective_weight(&store, 0) - 1.0).abs() < 1e-5);
        assert!((awl.effective_weight(&store, 1) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn awl_weights_receive_gradient_and_adapt() {
        // A large task loss should push its weight up (down-weighting it):
        // d/dw [L/(2w^2)] = -L/w^3 < 0, so gradient descent increases w.
        let mut store = ParamStore::new(0);
        let awl = AutomaticWeightedLoss::new(&mut store, "awl", 2);
        let mut tape = Tape::new();
        let l1 = tape.leaf(Matrix::scalar(100.0));
        let l2 = tape.leaf(Matrix::scalar(0.01));
        let total = awl.combine(&mut tape, &store, &[l1, l2]);
        tape.backward(total);
        tape.accumulate_param_grads(&mut store);
        let g = store.grad(awl.weights);
        assert!(g.get(0, 0) < 0.0, "large-loss weight grad should be negative");
        assert!(g.get(0, 1) > 0.0, "tiny-loss weight grad should be positive (regularizer dominates)");
    }

    #[test]
    fn awl_total_is_differentiable_wrt_task_losses() {
        let mut store = ParamStore::new(0);
        let awl = AutomaticWeightedLoss::new(&mut store, "awl", 1);
        *store.value_mut(awl.weights) = Matrix::scalar(1.0);
        let mut tape = Tape::new();
        let l = tape.leaf(Matrix::scalar(3.0));
        let total = awl.combine(&mut tape, &store, &[l]);
        tape.backward(total);
        // dTotal/dL = 1/(2w^2) = 0.5 at w=1.
        assert!((tape.grad(l).item() - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "expected 2 task losses")]
    fn awl_rejects_wrong_task_count() {
        let mut store = ParamStore::new(0);
        let awl = AutomaticWeightedLoss::new(&mut store, "awl", 2);
        let mut tape = Tape::new();
        let l = tape.leaf(Matrix::scalar(1.0));
        let _ = awl.combine(&mut tape, &store, &[l]);
    }
}
