//! Named trainable parameters with gradient and Adam state.
//!
//! A [`ParamStore`] owns every trainable matrix of a model, keyed by a
//! dense [`ParamId`] and a human-readable name (used for checkpointing).
//! The ADTD towers *share* transformer parameters by simply using the same
//! `ParamId` from both towers; the tape accumulates both contributions.

use crate::matrix::Matrix;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use taste_core::TasteError;

/// Dense handle to a parameter within its [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Param {
    name: String,
    value: Matrix,
    #[serde(skip)]
    grad: Option<Matrix>,
    #[serde(skip)]
    adam_m: Option<Matrix>,
    #[serde(skip)]
    adam_v: Option<Matrix>,
}

/// Owner of all trainable parameters of a model.
#[derive(Debug, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
    seed: u64,
    #[serde(skip, default = "default_rng")]
    rng: rand::rngs::StdRng,
    /// Process-unique store identity; regenerated on deserialization so a
    /// checkpoint restored into a new store never aliases a cache entry
    /// built against a different store.
    #[serde(skip, default = "fresh_uid")]
    uid: u64,
    /// Bumped on every mutable access to parameter values. The serving
    /// executor's packed-weight cache validates `(uid, version)` before
    /// reusing packed panels, so online weight updates (feedback loop,
    /// optimizer steps) invalidate stale packs automatically.
    #[serde(skip)]
    version: u64,
}

fn default_rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0)
}

fn fresh_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl ParamStore {
    /// Creates an empty store whose initializers draw from `seed`.
    pub fn new(seed: u64) -> ParamStore {
        ParamStore {
            params: Vec::new(),
            seed,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            uid: fresh_uid(),
            version: 0,
        }
    }

    /// Process-unique identity of this store instance (cache keying).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Mutation counter over parameter values (cache invalidation). Any
    /// path that can change a value — [`ParamStore::value_mut`], the
    /// optimizer, [`ParamStore::load_matching`] — bumps it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Registers a parameter initialized from `N(0, std²)`.
    pub fn normal(&mut self, name: &str, rows: usize, cols: usize, std: f32) -> ParamId {
        let mut value = Matrix::zeros(rows, cols);
        for v in value.as_mut_slice() {
            *v = normal_sample(&mut self.rng) * std;
        }
        self.push(name, value)
    }

    /// Registers a parameter with Xavier/Glorot-uniform initialization.
    pub fn xavier(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let mut value = Matrix::zeros(rows, cols);
        for v in value.as_mut_slice() {
            *v = self.rng.gen_range(-bound..bound);
        }
        self.push(name, value)
    }

    /// Registers a constant-initialized parameter (biases, LN gains).
    pub fn constant(&mut self, name: &str, rows: usize, cols: usize, fill: f32) -> ParamId {
        self.push(name, Matrix::full(rows, cols, fill))
    }

    /// Registers a parameter with an explicit initial value.
    pub fn with_value(&mut self, name: &str, value: Matrix) -> ParamId {
        self.push(name, value)
    }

    fn push(&mut self, name: &str, value: Matrix) -> ParamId {
        let id = ParamId(self.params.len());
        self.params.push(Param {
            name: name.to_owned(),
            value,
            grad: None,
            adam_m: None,
            adam_v: None,
        });
        id
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable access to the value (used by the optimizer and tests).
    /// Bumps the store version so packed-weight caches refresh.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.version += 1;
        &mut self.params[id.0].value
    }

    /// The parameter's name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// The accumulated gradient (zeros when untouched).
    pub fn grad(&self, id: ParamId) -> Matrix {
        let p = &self.params[id.0];
        p.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(p.value.rows(), p.value.cols()))
    }

    /// Mutable access to the gradient buffer, allocating it on first use.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        let p = &mut self.params[id.0];
        p.grad
            .get_or_insert_with(|| Matrix::zeros(p.value.rows(), p.value.cols()))
    }

    /// Zeroes every gradient buffer (between optimizer steps).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            if let Some(g) = &mut p.grad {
                g.fill_zero();
            }
        }
    }

    /// Global L2 norm of all gradients (for clipping).
    pub fn grad_global_norm(&self) -> f32 {
        self.params
            .iter()
            .filter_map(|p| p.grad.as_ref())
            .map(Matrix::sq_norm)
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient in place (used by gradient clipping).
    pub fn scale_grads(&mut self, factor: f32) {
        for p in &mut self.params {
            if let Some(g) = &mut p.grad {
                for v in g.as_mut_slice() {
                    *v *= factor;
                }
            }
        }
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Looks a parameter up by name (checkpoint loading).
    pub fn id_by_name(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId)
    }

    pub(crate) fn adam_state(&mut self, id: ParamId) -> (&mut Matrix, &mut Matrix, &mut Matrix, &Matrix) {
        self.version += 1;
        let p = &mut self.params[id.0];
        let (rows, cols) = p.value.shape();
        let m = p.adam_m.get_or_insert_with(|| Matrix::zeros(rows, cols));
        let v = p.adam_v.get_or_insert_with(|| Matrix::zeros(rows, cols));
        let grad = p.grad.get_or_insert_with(|| Matrix::zeros(rows, cols));
        (&mut p.value, m, v, grad)
    }

    /// The Adam moment buffers of a parameter, in `(m, v)` order, or
    /// `None` if the optimizer has not touched it yet.
    pub fn adam_moments(&self, id: ParamId) -> Option<(&Matrix, &Matrix)> {
        let p = &self.params[id.0];
        match (&p.adam_m, &p.adam_v) {
            (Some(m), Some(v)) => Some((m, v)),
            _ => None,
        }
    }

    /// Restores a parameter's Adam moment buffers from a checkpoint.
    ///
    /// # Errors
    /// [`TasteError::Corrupt`] when either buffer's shape disagrees with
    /// the parameter value.
    pub fn restore_adam_moments(&mut self, id: ParamId, m: Matrix, v: Matrix) -> Result<(), TasteError> {
        let p = &mut self.params[id.0];
        if m.shape() != p.value.shape() || v.shape() != p.value.shape() {
            return Err(TasteError::corrupt(format!(
                "param {:?}: moment shapes {:?}/{:?} disagree with value shape {:?}",
                p.name,
                m.shape(),
                v.shape(),
                p.value.shape()
            )));
        }
        p.adam_m = Some(m);
        p.adam_v = Some(v);
        Ok(())
    }

    /// Clears every parameter's Adam moment buffers. Call when starting
    /// a new training phase over a subset of parameters: stale momentum
    /// from an earlier phase would otherwise keep moving parameters whose
    /// gradients are now zeroed ("frozen").
    pub fn reset_optimizer_state(&mut self) {
        for p in &mut self.params {
            p.adam_m = None;
            p.adam_v = None;
        }
    }

    /// Serializes all parameter values to JSON (a training checkpoint).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore is always serializable")
    }

    /// Restores a store from a JSON checkpoint.
    ///
    /// # Errors
    /// [`TasteError::Serde`] when the JSON does not parse at all;
    /// [`TasteError::Corrupt`] when it parses but carries garbage — a
    /// value buffer whose length disagrees with its declared shape, or a
    /// non-finite parameter. Loading either silently would poison every
    /// later forward pass, so both are rejected at this edge.
    pub fn from_json(json: &str) -> Result<ParamStore, TasteError> {
        let store: ParamStore = serde_json::from_str(json)
            .map_err(|e| TasteError::Serde(format!("ParamStore: {e}")))?;
        store.validate()?;
        Ok(store)
    }

    /// Checks every parameter for buffer/shape agreement and finiteness.
    ///
    /// # Errors
    /// [`TasteError::Corrupt`] naming the first offending parameter.
    pub fn validate(&self) -> Result<(), TasteError> {
        for p in &self.params {
            let (rows, cols) = p.value.shape();
            if p.value.len() != rows * cols {
                return Err(TasteError::corrupt(format!(
                    "param {:?}: buffer holds {} values for declared shape {rows}x{cols}",
                    p.name,
                    p.value.len()
                )));
            }
            if !p.value.all_finite() {
                return Err(TasteError::corrupt(format!(
                    "param {:?} contains non-finite values",
                    p.name
                )));
            }
        }
        Ok(())
    }

    /// Copies values (matched by name) from another store; returns the
    /// number of parameters copied. Used to initialize fine-tuning from a
    /// pre-trained checkpoint, as the paper initializes from the TURL
    /// pre-trained encoder.
    pub fn load_matching(&mut self, source: &ParamStore) -> usize {
        self.version += 1;
        let mut copied = 0;
        for sp in &source.params {
            if let Some(id) = self.id_by_name(&sp.name) {
                if self.params[id.0].value.shape() == sp.value.shape() {
                    self.params[id.0].value = sp.value.clone();
                    copied += 1;
                }
            }
        }
        copied
    }
}

/// Box–Muller standard normal sample.
fn normal_sample(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initializers_have_expected_moments() {
        let mut store = ParamStore::new(7);
        let w = store.normal("w", 100, 100, 0.02);
        let vals = store.value(w).as_slice();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 0.005, "std {}", var.sqrt());

        let x = store.xavier("x", 50, 50);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(store.value(x).as_slice().iter().all(|v| v.abs() <= bound));

        let c = store.constant("b", 1, 8, 1.0);
        assert!(store.value(c).as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn same_seed_same_init() {
        let mut a = ParamStore::new(3);
        let mut b = ParamStore::new(3);
        let wa = a.normal("w", 4, 4, 1.0);
        let wb = b.normal("w", 4, 4, 1.0);
        assert_eq!(a.value(wa), b.value(wb));
        let mut c = ParamStore::new(4);
        let wc = c.normal("w", 4, 4, 1.0);
        assert_ne!(a.value(wa), c.value(wc));
    }

    #[test]
    fn grad_lifecycle() {
        let mut store = ParamStore::new(0);
        let w = store.constant("w", 2, 2, 0.0);
        assert_eq!(store.grad(w).sq_norm(), 0.0);
        store.grad_mut(w).axpy(1.0, &Matrix::full(2, 2, 3.0));
        assert_eq!(store.grad(w).sq_norm(), 36.0);
        assert_eq!(store.grad_global_norm(), 6.0);
        store.scale_grads(0.5);
        assert_eq!(store.grad_global_norm(), 3.0);
        store.zero_grads();
        assert_eq!(store.grad(w).sq_norm(), 0.0);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_values() {
        let mut store = ParamStore::new(11);
        store.normal("enc.w", 3, 3, 0.1);
        store.constant("enc.b", 1, 3, 0.5);
        let json = store.to_json();
        let back = ParamStore::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        let id = back.id_by_name("enc.b").unwrap();
        assert_eq!(back.value(id).as_slice(), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn from_json_rejects_shape_buffer_disagreement() {
        // Hand-built checkpoint whose buffer holds one value for a 2x2 shape.
        let json = r#"{"params":[{"name":"w","value":{"rows":2,"cols":2,"data":[1.0]}}],"seed":0}"#;
        match ParamStore::from_json(json) {
            Err(TasteError::Corrupt(msg)) => assert!(msg.contains("2x2"), "msg: {msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn from_json_rejects_non_finite_values() {
        // serde_json parses out-of-range literals like 1e999 as infinity.
        let json = r#"{"params":[{"name":"w","value":{"rows":1,"cols":1,"data":[1e999]}}],"seed":0}"#;
        match ParamStore::from_json(json) {
            Err(TasteError::Corrupt(msg)) => assert!(msg.contains("non-finite"), "msg: {msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Unparseable input maps to Serde, not Corrupt.
        assert!(matches!(ParamStore::from_json("not json"), Err(TasteError::Serde(_))));
    }

    #[test]
    fn adam_moments_roundtrip_through_accessors() {
        let mut store = ParamStore::new(0);
        let w = store.constant("w", 2, 2, 1.0);
        assert!(store.adam_moments(w).is_none());
        let m = Matrix::full(2, 2, 0.25);
        let v = Matrix::full(2, 2, 0.5);
        store.restore_adam_moments(w, m.clone(), v.clone()).unwrap();
        let (rm, rv) = store.adam_moments(w).unwrap();
        assert_eq!(rm, &m);
        assert_eq!(rv, &v);
        // Mismatched shapes are rejected as corruption.
        let bad = store.restore_adam_moments(w, Matrix::zeros(1, 2), Matrix::zeros(2, 2));
        assert!(matches!(bad, Err(TasteError::Corrupt(_))));
    }

    #[test]
    fn load_matching_copies_by_name_and_shape() {
        let mut pre = ParamStore::new(1);
        pre.constant("shared.w", 2, 2, 9.0);
        pre.constant("pretrain_only", 1, 1, 1.0);

        let mut fine = ParamStore::new(2);
        fine.constant("shared.w", 2, 2, 0.0);
        fine.constant("head.w", 2, 2, 0.0);
        fine.constant("shape_mismatch", 1, 1, 0.0);

        let mut pre2 = ParamStore::new(3);
        pre2.constant("shared.w", 2, 2, 9.0);
        pre2.constant("shape_mismatch", 3, 3, 2.0);

        assert_eq!(fine.load_matching(&pre), 1);
        let id = fine.id_by_name("shared.w").unwrap();
        assert!(fine.value(id).as_slice().iter().all(|&v| v == 9.0));
        // Shape mismatch is skipped, not copied.
        assert_eq!(fine.load_matching(&pre2), 1);
        let sm = fine.id_by_name("shape_mismatch").unwrap();
        assert!(fine.value(sm).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uid_and_version_track_identity_and_mutation() {
        let mut a = ParamStore::new(0);
        let b = ParamStore::new(0);
        assert_ne!(a.uid(), b.uid(), "every store instance gets a fresh uid");

        let w = a.constant("w", 2, 2, 1.0);
        let v0 = a.version();
        let _ = a.value(w); // read-only access must not bump
        assert_eq!(a.version(), v0);
        a.value_mut(w).fill_zero();
        assert!(a.version() > v0, "value_mut bumps the version");

        let v1 = a.version();
        let mut src = ParamStore::new(9);
        src.constant("w", 2, 2, 5.0);
        a.load_matching(&src);
        assert!(a.version() > v1, "load_matching bumps the version");

        // A deserialized checkpoint is a *different* store identity.
        let restored = ParamStore::from_json(&a.to_json()).unwrap();
        assert_ne!(restored.uid(), a.uid());
    }

    #[test]
    fn num_scalars_counts_all_elements() {
        let mut store = ParamStore::new(0);
        store.constant("a", 2, 3, 0.0);
        store.constant("b", 4, 1, 0.0);
        assert_eq!(store.num_scalars(), 10);
        assert_eq!(store.len(), 2);
    }
}
