//! A persistent scoped worker pool for row-parallel compute kernels.
//!
//! The pool is process-global and lazy: the first parallel kernel call
//! spawns its workers, which then park on their channels between calls,
//! so steady-state serving pays no thread-spawn cost. Dispatch is
//! *scoped*: [`KernelPool::run_rows`] blocks until every worker has
//! finished its row range before returning, which is what makes it sound
//! to hand workers a borrowed closure (the borrow provably outlives all
//! worker access, even when the closure panics — a drop guard waits out
//! the stragglers before unwinding continues).
//!
//! Determinism: work is split into contiguous row ranges by a fixed
//! arithmetic rule (`t * rows / threads`), every output row is computed
//! entirely by one thread with the same per-element instruction sequence
//! as the single-threaded kernel, and no thread ever reduces into another
//! thread's rows. Results are therefore bit-identical for every thread
//! count — the kernel-parity proptests assert exactly that.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// Locks a mutex, recovering from poisoning: the pool's shared state
/// (sender list, outstanding-task counter) stays structurally valid even
/// when a kernel closure panics mid-region.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Hard cap on pool workers; `run_rows` never uses more than
/// `MAX_WORKERS + 1` threads (workers plus the calling thread).
pub const MAX_WORKERS: usize = 15;

type Task = (&'static (dyn Fn(usize, usize) + Sync), usize, usize);

struct Completion {
    pending: Mutex<(usize, bool)>, // (tasks outstanding, a worker panicked)
    cv: Condvar,
}

impl Completion {
    fn finish(&self, panicked: bool) {
        let mut st = lock_recover(&self.pending);
        st.0 -= 1;
        st.1 |= panicked;
        self.cv.notify_all();
    }

    /// Blocks until every dispatched task finished; returns whether any
    /// worker panicked.
    fn wait(&self) -> bool {
        let mut st = lock_recover(&self.pending);
        while st.0 > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.1
    }
}

/// Waits out all dispatched workers even if the calling thread's own
/// chunk panics — without this, unwinding would free the borrowed
/// closure while workers still hold a reference to it.
struct WaitGuard<'p>(&'p Completion);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// The persistent worker pool. Obtain the process-wide instance with
/// [`KernelPool::global`].
pub struct KernelPool {
    state: Mutex<Vec<Sender<Task>>>,
    completion: &'static Completion,
}

impl KernelPool {
    /// The lazily-initialized process-global pool.
    pub fn global() -> &'static KernelPool {
        static POOL: OnceLock<KernelPool> = OnceLock::new();
        POOL.get_or_init(|| KernelPool {
            state: Mutex::new(Vec::new()),
            completion: Box::leak(Box::new(Completion {
                pending: Mutex::new((0, false)),
                cv: Condvar::new(),
            })),
        })
    }

    /// Number of worker threads spawned so far (grows on demand).
    pub fn spawned_workers(&self) -> usize {
        lock_recover(&self.state).len()
    }

    /// Runs `f(start, end)` over `threads` contiguous, disjoint row
    /// ranges covering `0..rows`, blocking until all ranges complete.
    /// The calling thread executes the first range itself; `threads - 1`
    /// pool workers execute the rest. With `threads <= 1` (or a single
    /// range) the call degenerates to `f(0, rows)` inline.
    ///
    /// One parallel region runs at a time (the dispatch lock is held for
    /// the whole region); concurrent callers queue. That is deliberate:
    /// the kernels are CPU-bound, so overlapping two parallel matmuls
    /// only adds contention.
    ///
    /// # Panics
    /// Propagates a panic from any range after all ranges have finished.
    pub fn run_rows(&self, threads: usize, rows: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        let t = threads.clamp(1, MAX_WORKERS + 1).min(rows.max(1));
        if t <= 1 {
            f(0, rows);
            return;
        }
        let mut workers = lock_recover(&self.state);
        while workers.len() < t - 1 {
            let (tx, rx) = channel::<Task>();
            let completion: &'static Completion = self.completion;
            let idx = workers.len();
            thread::Builder::new()
                .name(format!("taste-kernel-{idx}"))
                .spawn(move || {
                    for (task, start, end) in rx {
                        let panicked = catch_unwind(AssertUnwindSafe(|| task(start, end))).is_err();
                        completion.finish(panicked);
                    }
                })
                .expect("spawn kernel worker");
            workers.push(tx);
        }
        // SAFETY: the transmuted 'static borrow is only used by workers
        // between dispatch below and `Completion::wait`, which this
        // function always reaches before returning or unwinding (the
        // WaitGuard waits on the panic path).
        let f_static: &'static (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(f) };
        {
            let mut st = lock_recover(&self.completion.pending);
            *st = (t - 1, false);
        }
        let bound = |i: usize| i * rows / t;
        for w in 1..t {
            workers[w - 1]
                .send((f_static, bound(w), bound(w + 1)))
                .expect("kernel worker alive");
        }
        let worker_panic = {
            let _guard = WaitGuard(self.completion);
            f(0, bound(1));
            self.completion.wait()
        };
        drop(workers);
        assert!(!worker_panic, "kernel pool worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_row_exactly_once() {
        let rows = 103;
        for threads in [1, 2, 3, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
            KernelPool::global().run_rows(threads, rows, &|start, end| {
                for h in &hits[start..end] {
                    h.fetch_add(1, Ordering::SeqCst);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "threads={threads}: some row not covered exactly once"
            );
        }
    }

    #[test]
    fn workers_persist_across_calls() {
        let pool = KernelPool::global();
        pool.run_rows(3, 16, &|_, _| {});
        let spawned = pool.spawned_workers();
        assert!(spawned >= 2);
        for _ in 0..10 {
            pool.run_rows(3, 16, &|_, _| {});
        }
        assert_eq!(pool.spawned_workers(), spawned, "pool re-spawned workers");
    }

    #[test]
    fn zero_rows_and_single_thread_are_inline() {
        let ran = AtomicUsize::new(0);
        KernelPool::global().run_rows(4, 0, &|start, end| {
            assert_eq!((start, end), (0, 0));
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_panic_propagates_after_drain() {
        let result = std::panic::catch_unwind(|| {
            KernelPool::global().run_rows(2, 64, &|start, _| {
                if start > 0 {
                    panic!("injected kernel panic");
                }
            });
        });
        assert!(result.is_err(), "worker panic must propagate to the caller");
        // The pool must remain usable afterwards.
        KernelPool::global().run_rows(2, 8, &|_, _| {});
    }
}
