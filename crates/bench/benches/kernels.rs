//! Criterion microbenches for the numeric kernels underlying inference:
//! matmul variants, softmax, layer norm, and the tokenizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use taste_nn::kernels::{self, Act, PackedB};
use taste_nn::Matrix;
use taste_tokenizer::{Tokenizer, VocabBuilder};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &(m, k, n) in &[(64usize, 64usize, 64usize), (256, 64, 64), (256, 16, 256)] {
        let a = Matrix::full(m, k, 0.5);
        let b = Matrix::full(k, n, 0.25);
        group.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{k}x{n}")), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul(b)))
        });
    }
    // Transpose-free attention-score kernels.
    let q = Matrix::full(128, 16, 0.5);
    let kk = Matrix::full(128, 16, 0.25);
    group.bench_function("scores_matmul_bt_128x128x16", |b| b.iter(|| black_box(q.matmul_bt(&kk))));
    group.finish();
}

fn bench_kernel_variants(c: &mut Criterion) {
    // Encoder-shaped matmul through each serving-path kernel variant:
    // lane (single-thread), packed panels, packed + fused bias/GELU,
    // and row-parallel at 4 threads. All are bit-identical; only the
    // time differs.
    let (m, k, n) = (64usize, 312usize, 312usize);
    let a = Matrix::full(m, k, 0.5);
    let b = Matrix::full(k, n, 0.25);
    let bias = Matrix::full(1, n, 0.1);
    let packed = PackedB::pack(&b);
    let mut out = Matrix::zeros(m, n);

    let mut group = c.benchmark_group("kernel_variants_64x312x312");
    group.bench_function("lane", |bench| {
        bench.iter(|| kernels::matmul_into_mt(black_box(&a), black_box(&b), 1, &mut out))
    });
    group.bench_function("packed", |bench| {
        bench.iter(|| kernels::matmul_packed_into(black_box(&a), black_box(&packed), None, Act::Ident, 1, &mut out))
    });
    group.bench_function("packed_fused_bias_gelu", |bench| {
        bench.iter(|| {
            kernels::matmul_packed_into(black_box(&a), black_box(&packed), Some(&bias), Act::Gelu, 1, &mut out)
        })
    });
    group.bench_function("lane_threads4", |bench| {
        bench.iter(|| kernels::matmul_into_mt(black_box(&a), black_box(&b), 4, &mut out))
    });

    // The allocation-free transpose-free forms the tape backward uses.
    let grad = Matrix::full(m, n, 0.125);
    let mut da = Matrix::zeros(m, k);
    let mut db = Matrix::zeros(k, n);
    group.bench_function("backward_matmul_bt_into", |bench| {
        bench.iter(|| grad.matmul_bt_into(black_box(&b), &mut da))
    });
    group.bench_function("backward_matmul_at_into", |bench| {
        bench.iter(|| a.matmul_at_into(black_box(&grad), &mut db))
    });
    group.finish();
}

fn bench_rowwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("rowwise");
    let x = Matrix::full(256, 256, 0.1);
    group.bench_function("softmax_rows_256x256", |b| b.iter(|| black_box(x.softmax_rows())));
    group.bench_function("transpose_256x256", |b| b.iter(|| black_box(x.transpose())));
    group.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let mut vb = VocabBuilder::new();
    for w in ["customer", "orders", "city", "phone", "number", "shipment", "address"] {
        for _ in 0..3 {
            vb.add_word(w);
        }
    }
    let tok = Tokenizer::new(vb.build(1000, 1));
    let text = "customer_shipment_address city phone_number 4111111111111111 orders2024 unknownword";
    c.bench_function("tokenizer_encode_mixed_text", |b| b.iter(|| black_box(tok.encode(black_box(text)))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_kernel_variants, bench_rowwise, bench_tokenizer
}
criterion_main!(benches);
