//! Criterion benches for the paper's two performance mechanisms —
//! the **latent cache** (§4.2.2) and **pipelining** (§5) — as isolated
//! ablations over a fixed untrained model (training state does not
//! affect kernel cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use taste_core::LabelSet;
use taste_data::corpus::{Corpus, CorpusSpec};
use taste_data::load::load_split;
use taste_data::splits::Split;
use taste_db::LatencyProfile;
use taste_framework::{TasteConfig, TasteEngine};
use taste_model::features::NONMETA_DIM;
use taste_model::prepare::TableChunk;
use taste_model::{Adtd, ModelConfig};
use taste_tokenizer::{ColumnContent, Tokenizer, VocabBuilder};

fn tokenizer() -> Tokenizer {
    let mut vb = VocabBuilder::new();
    for w in ["users", "city", "name", "phone", "text", "int", "alpha", "beta"] {
        vb.add_word(w);
        vb.add_word(w);
    }
    Tokenizer::new(vb.build(500, 1))
}

fn chunk(ncols: usize) -> TableChunk {
    TableChunk {
        table_text: "users records".into(),
        col_texts: (0..ncols).map(|i| format!("city{i} text")).collect(),
        nonmeta: (0..ncols).map(|_| vec![0.3; NONMETA_DIM]).collect(),
        ordinals: (0..ncols as u16).collect(),
    }
}

/// P2 inference with the metadata latents cached vs recomputed — the
/// *TASTE w/o caching* ablation at kernel granularity.
fn bench_latent_cache(c: &mut Criterion) {
    let model = Adtd::new(ModelConfig::small(), tokenizer(), 16, 3);
    let ch = chunk(6);
    let contents: Vec<Option<ColumnContent>> = (0..6)
        .map(|_| Some(ColumnContent { cells: vec!["alpha".into(), "beta".into(), "alpha".into()] }))
        .collect();
    let cached = model.encode_meta(&ch);

    let mut group = c.benchmark_group("latent_cache");
    group.bench_function("p2_with_cached_meta_latents", |b| {
        b.iter(|| black_box(model.predict_content(&cached, &contents, &ch.nonmeta)))
    });
    group.bench_function("p2_recomputing_meta_tower", |b| {
        b.iter(|| {
            let enc = model.encode_meta(&ch);
            black_box(model.predict_content(&enc, &contents, &ch.nonmeta))
        })
    });
    group.finish();
}

/// End-to-end batch detection, sequential vs pipelined across pool
/// sizes, on a latency-bearing simulated database.
fn bench_pipelining(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusSpec {
        n_tables: 12,
        ..CorpusSpec::synth_wiki(12, 3)
    });
    let mut vb = VocabBuilder::new();
    for t in &corpus.tables {
        for col in &t.columns {
            vb.add_word(&col.name);
        }
    }
    let model = Arc::new(Adtd::new(
        ModelConfig::small(),
        Tokenizer::new(vb.build(500, 1)),
        corpus.ntypes(),
        3,
    ));
    let latency = LatencyProfile {
        connect: Duration::from_millis(2),
        query_rtt: Duration::from_micros(800),
        scan_per_row: Duration::from_micros(60),
        ..LatencyProfile::zero()
    };
    let loaded = load_split(&corpus, Split::Train, latency, None).expect("load");
    let ids: Vec<_> = loaded.db.table_ids().into_iter().take(12).collect();
    // Wide-open band: every column goes through P2, stressing all stages.
    let base = TasteConfig { alpha: 0.0001, beta: 0.9999, ..Default::default() };

    let mut group = c.benchmark_group("pipelining");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let engine = TasteEngine::new(Arc::clone(&model), TasteConfig { pipelining: false, ..base }).unwrap();
        b.iter(|| {
            let r = engine.detect_batch(&loaded.db, &ids).unwrap();
            black_box(r.tables.iter().map(|t| t.admitted.len()).sum::<usize>())
        })
    });
    for pool in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("pipelined", pool), &pool, |b, &pool| {
            let engine = TasteEngine::new(
                Arc::clone(&model),
                TasteConfig { pipelining: true, pool_size: pool, ..base },
            )
            .unwrap();
            b.iter(|| {
                let r = engine.detect_batch(&loaded.db, &ids).unwrap();
                black_box(r.tables.iter().map(|t| t.admitted.len()).sum::<usize>())
            })
        });
    }
    group.finish();

    // Keep the label type referenced so the bench exercises the public
    // result shape end-to-end.
    let _ = LabelSet::empty();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_latent_cache, bench_pipelining
}
criterion_main!(benches);
