//! Report formatting: aligned text tables and JSON result files.

use std::path::PathBuf;
use std::time::Duration;

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats a ratio as a percentage.
pub fn pct(r: f64) -> String {
    format!("{:.1}%", r * 100.0)
}

/// Formats a score to four decimals (the paper's convention).
pub fn score(s: f64) -> String {
    format!("{s:.4}")
}

/// The results directory at the workspace root.
pub fn results_dir() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.canonicalize().unwrap_or(root).join("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Writes an experiment's JSON result file.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(body) => {
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  -> wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500s");
        assert_eq!(pct(0.451), "45.1%");
        assert_eq!(score(0.93456), "0.9346");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table("t", &["a", "b"], &[vec!["1".into()], vec!["22".into(), "333".into(), "4".into()]]);
    }
}
