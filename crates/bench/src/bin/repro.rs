//! Reproduction entry point: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p taste-bench --release --bin repro -- all
//! cargo run -p taste-bench --release --bin repro -- fig4 table3
//! TASTE_REPRO_SCALE=quick cargo run -p taste-bench --release --bin repro -- table2
//! ```

use taste_bench::{experiments, Scale};

fn main() {
    let mut scale = Scale::from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--smoke` forces the quick scale regardless of the environment —
    // CI smoke jobs pass it so a stray TASTE_REPRO_SCALE can't slow them.
    if args.iter().any(|a| a == "--smoke") {
        args.retain(|a| a != "--smoke");
        scale = Scale::quick();
    }
    if args.is_empty() {
        eprintln!(
            "usage: repro [--smoke] [table2|fig4|table3|table4|fig5|fig6|fig7|fig8|fault_sweep|overload_sweep|crash_resume|train_resume|infer_bench|kernel_bench|batch_bench|swap_bench|all]..."
        );
        std::process::exit(2);
    }
    println!("reproduction scale: {:?}", scale);
    for arg in &args {
        let t0 = std::time::Instant::now();
        let result = match arg.as_str() {
            "table2" => experiments::table2(&scale),
            "fig4" => experiments::fig4(&scale),
            "table3" => experiments::table3(&scale),
            "table4" => experiments::table4(&scale),
            "fig5" => experiments::fig5(&scale),
            "fig6" => experiments::fig6(&scale),
            "fig7" => experiments::fig7(&scale),
            "fig8" => experiments::fig8(&scale),
            "fault_sweep" => experiments::fault_sweep(&scale),
            "overload_sweep" => experiments::overload_sweep(&scale),
            "crash_resume" => experiments::crash_resume(&scale),
            "train_resume" => experiments::train_resume(&scale),
            "infer_bench" => experiments::infer_bench(&scale),
            "kernel_bench" => experiments::kernel_bench(&scale),
            "batch_bench" => experiments::batch_bench(&scale),
            "swap_bench" => experiments::swap_bench(&scale),
            "all" => experiments::all(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        match result {
            Ok(()) => println!("[{arg}] completed in {:.1?}", t0.elapsed()),
            Err(e) => {
                eprintln!("[{arg}] failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
