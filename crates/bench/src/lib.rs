//! # taste-bench
//!
//! The reproduction harness: everything needed to regenerate every table
//! and figure of the paper's evaluation (§6), plus Criterion microbenches
//! for the mechanisms (latent cache, pipelining, attention kernels).
//!
//! The `repro` binary is the entry point:
//!
//! ```text
//! cargo run -p taste-bench --release --bin repro -- all
//! cargo run -p taste-bench --release --bin repro -- fig4
//! ```
//!
//! Results print as aligned text tables and are also written as JSON
//! under `results/`, which `EXPERIMENTS.md` references.

#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod fmt;
pub mod models;
pub mod scale;

pub use scale::Scale;
