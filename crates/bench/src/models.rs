//! Model training with a disk checkpoint cache.
//!
//! Training on one CPU core is the expensive part of the reproduction;
//! every trained model is cached under `results/cache/` keyed by dataset,
//! model kind, and scale, so re-running a single experiment does not
//! retrain the world. Delete the cache directory to force retraining.

use crate::datasets::{training_inputs_from_split, Bundle};
use crate::scale::Scale;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use taste_core::{Result, TasteError};
use taste_data::splits::Split;
use taste_model::pretrain::{pretrain_encoder, sequences_from_inputs, PretrainConfig};
use taste_model::trainer::{train_adtd, train_single_tower};
use taste_model::{Adtd, BaselineKind, ModelConfig, SingleTower, TrainConfig};

/// The four models every comparison uses.
pub struct TrainedModels {
    /// Default TASTE (no histogram features).
    pub taste: Arc<Adtd>,
    /// TASTE trained with histogram features.
    pub taste_hist: Arc<Adtd>,
    /// TURL analog.
    pub turl: Arc<SingleTower>,
    /// Doduo analog.
    pub doduo: Arc<SingleTower>,
}

fn cache_dir() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.canonicalize().unwrap_or(root).join("results/cache");
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn cache_path(name: &str) -> PathBuf {
    cache_dir().join(format!("{name}.json"))
}

fn load_cached(name: &str) -> Option<String> {
    std::fs::read_to_string(cache_path(name)).ok()
}

fn store_cached(name: &str, json: &str) {
    if let Err(e) = std::fs::write(cache_path(name), json) {
        eprintln!("warning: could not cache {name}: {e}");
    }
}

/// The reduced-scale model configuration used by all experiments.
pub fn experiment_config() -> ModelConfig {
    ModelConfig::small()
}

/// The fine-tuning recipe at a given scale.
pub fn train_config(scale: &Scale) -> TrainConfig {
    TrainConfig {
        epochs: scale.epochs,
        batch_size: 8,
        lr: 2.5e-3,
        pos_weight: 8.0,
        freeze_awl: true,
        ..Default::default()
    }
}

/// Pre-trains (or loads) the MLM-initialized encoder store for a config.
fn pretrained_store(
    tag: &str,
    cfg: &ModelConfig,
    bundle: &Bundle,
    scale: &Scale,
    inputs: &[taste_model::ModelInput],
) -> Result<taste_nn::ParamStore> {
    let key = format!("pretrain-{tag}-{}-{}", bundle.kind.label(), scale.fingerprint());
    if let Some(json) = load_cached(&key) {
        if let Ok(store) = taste_nn::ParamStore::from_json(&json) {
            return Ok(store);
        }
    }
    let mut seqs = sequences_from_inputs(&bundle.tokenizer, cfg.budget, inputs);
    seqs.truncate(scale.pretrain_sequences);
    let pcfg = PretrainConfig { epochs: scale.pretrain_epochs, seed: scale.seed, ..Default::default() };
    let t0 = Instant::now();
    let store = pretrain_encoder(cfg, &bundle.tokenizer, &seqs, &pcfg)?;
    eprintln!("  pretrained {tag} encoder for {} in {:.1?}", bundle.kind.label(), t0.elapsed());
    store_cached(&key, &store.to_json());
    Ok(store)
}

/// Trains (or loads) one ADTD variant.
pub fn taste_model(bundle: &Bundle, scale: &Scale, with_histograms: bool, tag: &str) -> Result<Arc<Adtd>> {
    let key = format!("taste-{tag}-{}-{}", bundle.kind.label(), scale.fingerprint());
    if let Some(json) = load_cached(&key) {
        if let Ok(model) = Adtd::from_json(&json) {
            return Ok(Arc::new(model));
        }
    }
    let cfg = if with_histograms {
        experiment_config().with_histograms()
    } else {
        experiment_config()
    };
    let inputs = training_inputs_from_split(&bundle.corpus, Split::Train, with_histograms, bundle.kind.default_l(), 50, 10)?;
    let pre = pretrained_store("base", &experiment_config(), bundle, scale, &inputs)?;
    let mut model = Adtd::new(cfg, bundle.tokenizer.clone(), bundle.corpus.ntypes(), scale.seed);
    let copied = model.store.load_matching(&pre);
    eprintln!(
        "  training TASTE{} on {} ({} inputs, {} pretrained tensors)...",
        if with_histograms { " w/ histogram" } else { "" },
        bundle.kind.label(),
        inputs.len(),
        copied
    );
    let t0 = Instant::now();
    let report = train_adtd(&mut model, &inputs, &train_config(scale)).map_err(|e| TasteError::Training(e.to_string()))?;
    eprintln!("    done in {:.1?}, losses {:?}", t0.elapsed(), report.epoch_losses);
    store_cached(&key, &model.to_json());
    Ok(Arc::new(model))
}

/// Trains (or loads) one baseline.
pub fn baseline_model(bundle: &Bundle, scale: &Scale, kind: BaselineKind) -> Result<Arc<SingleTower>> {
    let key = format!("{}-{}-{}", kind.label().to_lowercase(), bundle.kind.label(), scale.fingerprint());
    if let Some(json) = load_cached(&key) {
        if let Ok(model) = SingleTower::from_json(&json) {
            return Ok(Arc::new(model));
        }
    }
    let inputs = training_inputs_from_split(&bundle.corpus, Split::Train, false, bundle.kind.default_l(), 50, 10)?;
    let cfg = kind.derive_config(&experiment_config());
    let tag = match kind {
        BaselineKind::Turl => "base",
        BaselineKind::Doduo => "doduo",
    };
    let pre = pretrained_store(tag, &cfg, bundle, scale, &inputs)?;
    let mut model = SingleTower::new(kind, &experiment_config(), bundle.tokenizer.clone(), bundle.corpus.ntypes(), scale.seed);
    model.store.load_matching(&pre);
    eprintln!("  training {} on {} ({} inputs)...", kind.label(), bundle.kind.label(), inputs.len());
    let t0 = Instant::now();
    let report = train_single_tower(&mut model, &inputs, &train_config(scale))
        .map_err(|e| TasteError::Training(e.to_string()))?;
    eprintln!("    done in {:.1?}, losses {:?}", t0.elapsed(), report.epoch_losses);
    store_cached(&key, &model.to_json());
    Ok(Arc::new(model))
}

/// Trains or loads the full model set for a bundle.
pub fn train_all(bundle: &Bundle, scale: &Scale) -> Result<TrainedModels> {
    Ok(TrainedModels {
        taste: taste_model(bundle, scale, false, "plain")?,
        taste_hist: taste_model(bundle, scale, true, "hist")?,
        turl: baseline_model(bundle, scale, BaselineKind::Turl)?,
        doduo: baseline_model(bundle, scale, BaselineKind::Doduo)?,
    })
}

/// Trains (or loads) a TASTE model fine-tuned on a retained-type-set
/// corpus (Fig. 6). The tuned corpus shares the bundle's tokenizer.
pub fn taste_model_for_corpus(
    corpus: &taste_data::Corpus,
    tokenizer: &taste_tokenizer::Tokenizer,
    bundle_label: &str,
    scale: &Scale,
    tag: &str,
) -> Result<Arc<Adtd>> {
    let key = format!("taste-{tag}-{bundle_label}-{}", scale.fingerprint());
    if let Some(json) = load_cached(&key) {
        if let Ok(model) = Adtd::from_json(&json) {
            return Ok(Arc::new(model));
        }
    }
    let inputs = training_inputs_from_split(corpus, Split::Train, false, 20, 50, 10)?;
    let mut model = Adtd::new(experiment_config(), tokenizer.clone(), corpus.ntypes(), scale.seed);
    eprintln!("  training TASTE[{tag}] ({} inputs)...", inputs.len());
    let t0 = Instant::now();
    let report = train_adtd(&mut model, &inputs, &train_config(scale)).map_err(|e| TasteError::Training(e.to_string()))?;
    eprintln!("    done in {:.1?}, losses {:?}", t0.elapsed(), report.epoch_losses);
    store_cached(&key, &model.to_json());
    Ok(Arc::new(model))
}
