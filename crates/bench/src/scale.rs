//! Experiment scale presets.
//!
//! The paper trains on 397K (WikiTable) / 80K (GitTables) tables on a
//! GPU; the reproduction's default scale is sized so the entire
//! experiment suite (all models, all figures) finishes on a single CPU
//! core in tens of minutes while keeping every comparison meaningful.
//! `TASTE_REPRO_SCALE=quick` shrinks everything further for smoke runs.

use serde::{Deserialize, Serialize};

/// Corpus and training sizes for the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// SynthWiki table count.
    pub wiki_tables: usize,
    /// SynthGit table count.
    pub git_tables: usize,
    /// Fine-tuning epochs (paper: 20).
    pub epochs: usize,
    /// MLM pre-training epochs.
    pub pretrain_epochs: usize,
    /// Cap on MLM pre-training sequences.
    pub pretrain_sequences: usize,
    /// Root seed for every derived stream.
    pub seed: u64,
    /// Repetitions for timing experiments (paper: 10 runs).
    pub timing_runs: usize,
    /// Retained-type-set sizes `k` for the Fig. 6 sweep.
    pub fig6_ks: [usize; 4],
}

impl Scale {
    /// The default reproduction scale.
    pub fn default_scale() -> Scale {
        Scale {
            wiki_tables: 700,
            git_tables: 300,
            epochs: 12,
            pretrain_epochs: 2,
            pretrain_sequences: 500,
            seed: 0,
            timing_runs: 3,
            fig6_ks: [10, 25, 40, 55],
        }
    }

    /// A fast smoke-test scale.
    pub fn quick() -> Scale {
        Scale {
            wiki_tables: 60,
            git_tables: 40,
            epochs: 2,
            pretrain_epochs: 1,
            pretrain_sequences: 80,
            seed: 0,
            timing_runs: 1,
            fig6_ks: [10, 25, 40, 55],
        }
    }

    /// Resolves the scale from the `TASTE_REPRO_SCALE` environment
    /// variable (`quick` or `default`, defaulting to the default scale).
    pub fn from_env() -> Scale {
        match std::env::var("TASTE_REPRO_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            _ => Scale::default_scale(),
        }
    }

    /// A stable fingerprint used in checkpoint cache keys.
    pub fn fingerprint(&self) -> String {
        format!(
            "w{}g{}e{}p{}s{}q{}",
            self.wiki_tables, self.git_tables, self.epochs, self.pretrain_epochs, self.seed, self.pretrain_sequences
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let d = Scale::default_scale();
        let q = Scale::quick();
        assert!(q.wiki_tables < d.wiki_tables);
        assert!(q.epochs <= d.epochs);
    }

    #[test]
    fn fingerprint_distinguishes_scales() {
        assert_ne!(Scale::default_scale().fingerprint(), Scale::quick().fingerprint());
    }
}
