//! One reproduction function per table / figure of the paper (§6).
//!
//! Every function is self-contained: it builds (or reloads from cache)
//! the corpora and models it needs, runs the measurement, prints an
//! aligned table, and writes `results/<exp>.json`.

use crate::datasets::{build_bundle, Bundle, DatasetKind};
use crate::fmt::{pct, print_table, score, secs, write_json};
use crate::models::{self, TrainedModels};
use crate::scale::Scale;
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::{Result, TasteError};
use taste_data::load::{load_split, LoadedSplit};
use taste_data::splits::Split;
use taste_db::{FaultProfile, LatencyProfile};
use taste_framework::baseline_run::{run_baseline, BaselineRunConfig};
use taste_framework::config::ScanKind;
use taste_framework::{
    evaluate_report, DetectionReport, HardeningConfig, OverloadConfig, RetryConfig, TasteConfig,
    TasteEngine,
};
use taste_model::prepare::{training_inputs, ModelInput};
use taste_model::{Adtd, ExecMode, Inferencer};
use taste_tokenizer::ColumnContent;

fn run_taste(model: &Arc<Adtd>, split: &LoadedSplit, cfg: TasteConfig) -> Result<DetectionReport> {
    let engine = TasteEngine::new(Arc::clone(model), cfg)?;
    engine.detect_batch(&split.db, &split.db.table_ids())
}

fn mean_std(samples: &[Duration]) -> (f64, f64) {
    let xs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// The seven Fig. 4 execution-time variants, in paper order.
const VARIANTS: [&str; 7] = [
    "TURL",
    "Doduo",
    "TASTE",
    "TASTE w/ histogram",
    "TASTE w/o pipelining",
    "TASTE w/o caching",
    "TASTE w/ sampling",
];

/// Runs one named variant once against the appropriate test database.
fn run_variant(name: &str, bundle: &Bundle, models: &TrainedModels, timed: bool) -> Result<DetectionReport> {
    let split = if timed { &bundle.test_timed } else { &bundle.test_fast };
    let hist_split = if timed { &bundle.test_timed_hist } else { &bundle.test_fast_hist };
    let base = TasteConfig { l: bundle.kind.default_l(), ..TasteConfig::default() };
    match name {
        "TURL" => run_baseline(&models.turl, &split.db, &split.db.table_ids(), &BaselineRunConfig::default()),
        "Doduo" => run_baseline(&models.doduo, &split.db, &split.db.table_ids(), &BaselineRunConfig::default()),
        "TASTE" => run_taste(&models.taste, split, base),
        "TASTE w/ histogram" => run_taste(
            &models.taste_hist,
            hist_split,
            TasteConfig { use_histograms: true, ..base },
        ),
        "TASTE w/o pipelining" => run_taste(&models.taste, split, TasteConfig { pipelining: false, ..base }),
        "TASTE w/o caching" => run_taste(&models.taste, split, TasteConfig { caching: false, ..base }),
        "TASTE w/ sampling" => run_taste(
            &models.taste,
            split,
            TasteConfig { scan: ScanKind::Sample { seed: 0 }, ..base },
        ),
        other => unreachable!("unknown variant {other}"),
    }
}

/// Table 2 — dataset summary.
pub fn table2(scale: &Scale) -> Result<()> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for kind in [DatasetKind::Wiki, DatasetKind::Git] {
        let corpus = taste_data::Corpus::generate(kind.spec(scale));
        for split in [None, Some(Split::Train), Some(Split::Valid), Some(Split::Test)] {
            let s = corpus.summarize(split);
            rows.push(vec![
                s.name.clone(),
                s.tables.to_string(),
                s.columns.to_string(),
                s.types.to_string(),
                format!("{:.2}%", s.pct_without_types),
            ]);
            out.push(json!({
                "name": s.name, "tables": s.tables, "columns": s.columns,
                "types": s.types, "pct_without_types": s.pct_without_types,
            }));
        }
    }
    print_table(
        "Table 2: summary of the synthetic datasets",
        &["dataset", "# tables", "# cols", "# types", "% col w/o types"],
        &rows,
    );
    write_json("table2", &json!(out));
    Ok(())
}

/// Fig. 4 — end-to-end execution time of every variant on both datasets.
pub fn fig4(scale: &Scale) -> Result<()> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for kind in [DatasetKind::Wiki, DatasetKind::Git] {
        let bundle = build_bundle(kind, scale)?;
        let models = models::train_all(&bundle, scale)?;
        for name in VARIANTS {
            let mut times = Vec::with_capacity(scale.timing_runs);
            for _ in 0..scale.timing_runs {
                let report = run_variant(name, &bundle, &models, true)?;
                times.push(report.wall_time);
            }
            let (mean, std) = mean_std(&times);
            rows.push(vec![
                kind.label().to_string(),
                name.to_string(),
                format!("{mean:.3}s"),
                format!("±{std:.3}s"),
            ]);
            out.push(json!({
                "dataset": kind.label(), "approach": name,
                "mean_s": mean, "std_s": std, "runs": scale.timing_runs,
            }));
        }
    }
    print_table(
        "Fig 4: end-to-end execution time",
        &["dataset", "approach", "mean", "std"],
        &rows,
    );
    write_json("fig4", &json!(out));
    Ok(())
}

/// Table 3 — precision / recall / F1 of every accuracy-relevant variant.
pub fn table3(scale: &Scale) -> Result<()> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for kind in [DatasetKind::Wiki, DatasetKind::Git] {
        let bundle = build_bundle(kind, scale)?;
        let models = models::train_all(&bundle, scale)?;
        for name in ["TURL", "Doduo", "TASTE", "TASTE w/ histogram", "TASTE w/ sampling"] {
            let report = run_variant(name, &bundle, &models, false)?;
            let split = if name == "TASTE w/ histogram" { &bundle.test_fast_hist } else { &bundle.test_fast };
            let scores = evaluate_report(&report, &split.truth, split.ntypes);
            rows.push(vec![
                kind.label().to_string(),
                name.to_string(),
                score(scores.precision),
                score(scores.recall),
                score(scores.f1),
            ]);
            out.push(json!({
                "dataset": kind.label(), "approach": name,
                "precision": scores.precision, "recall": scores.recall, "f1": scores.f1,
            }));
        }
    }
    print_table(
        "Table 3: F1 scores (content available)",
        &["dataset", "approach", "precision", "recall", "F1"],
        &rows,
    );
    write_json("table3", &json!(out));
    Ok(())
}

/// Table 4 — metadata-only robustness (strict privacy setting).
pub fn table4(scale: &Scale) -> Result<()> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for kind in [DatasetKind::Wiki, DatasetKind::Git] {
        let bundle = build_bundle(kind, scale)?;
        let models = models::train_all(&bundle, scale)?;
        let split = &bundle.test_fast;
        let no_content = BaselineRunConfig { with_content: false, ..Default::default() };
        let cases: Vec<(&str, DetectionReport)> = vec![
            (
                "TURL w/o content",
                run_baseline(&models.turl, &split.db, &split.db.table_ids(), &no_content)?,
            ),
            (
                "Doduo w/o content",
                run_baseline(&models.doduo, &split.db, &split.db.table_ids(), &no_content)?,
            ),
            (
                "TASTE w/o P2",
                run_taste(&models.taste, split, TasteConfig::default().without_p2())?,
            ),
        ];
        for (name, report) in cases {
            assert_eq!(report.ledger.columns_scanned, 0, "{name} must not scan content");
            let scores = evaluate_report(&report, &split.truth, split.ntypes);
            rows.push(vec![
                kind.label().to_string(),
                name.to_string(),
                score(scores.precision),
                score(scores.recall),
                score(scores.f1),
            ]);
            out.push(json!({
                "dataset": kind.label(), "approach": name,
                "precision": scores.precision, "recall": scores.recall, "f1": scores.f1,
            }));
        }
    }
    print_table(
        "Table 4: F1 scores with metadata only (strict privacy)",
        &["dataset", "approach", "precision", "recall", "F1"],
        &rows,
    );
    write_json("table4", &json!(out));
    Ok(())
}

/// Fig. 5 — ratio of scanned columns.
pub fn fig5(scale: &Scale) -> Result<()> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for kind in [DatasetKind::Wiki, DatasetKind::Git] {
        let bundle = build_bundle(kind, scale)?;
        let models = models::train_all(&bundle, scale)?;
        for name in ["TURL", "Doduo", "TASTE", "TASTE w/ histogram"] {
            let report = run_variant(name, &bundle, &models, false)?;
            rows.push(vec![kind.label().to_string(), name.to_string(), pct(report.scanned_ratio())]);
            out.push(json!({
                "dataset": kind.label(), "approach": name, "scanned_ratio": report.scanned_ratio(),
            }));
        }
    }
    print_table("Fig 5: ratio of scanned columns", &["dataset", "approach", "scanned"], &rows);
    write_json("fig5", &json!(out));
    Ok(())
}

/// Fig. 6 — behavior as the ratio of columns without any type grows
/// (retained type sets `S_k` on the Wiki corpus).
pub fn fig6(scale: &Scale) -> Result<()> {
    let bundle = build_bundle(DatasetKind::Wiki, scale)?;
    let mut rows = Vec::new();
    let mut out = Vec::new();
    // Two retained-set sizes bound the sweep (each k costs a full
    // fine-tuning run on one CPU core).
    for k in [scale.fig6_ks[0], scale.fig6_ks[3]] {
        let (tuned, _mask) = bundle.corpus.retain_types(k, scale.seed);
        let model = models::taste_model_for_corpus(
            &tuned,
            &bundle.tokenizer,
            DatasetKind::Wiki.label(),
            scale,
            &format!("s{k}"),
        )?;
        let timed = load_split(&tuned, Split::Test, LatencyProfile::cloud(), None)?;
        let report = run_taste(&model, &timed, TasteConfig::default())?;
        let scores = evaluate_report(&report, &timed.truth, timed.ntypes);
        let eta = {
            let s = tuned.summarize(Some(Split::Test));
            s.pct_without_types / 100.0
        };
        rows.push(vec![
            format!("k={k}"),
            pct(eta),
            secs(report.wall_time),
            score(scores.f1),
            pct(report.scanned_ratio()),
        ]);
        out.push(json!({
            "k": k, "eta": eta, "time_s": report.wall_time.as_secs_f64(),
            "f1": scores.f1, "scanned_ratio": report.scanned_ratio(),
        }));
    }
    print_table(
        "Fig 6: columns without any types (WikiTable-S_k)",
        &["retained", "eta (% cols w/o type)", "time", "F1", "scanned"],
        &rows,
    );
    write_json("fig6", &json!(out));
    Ok(())
}

/// Fig. 7 — sensitivity to `α` and `β` on the Wiki corpus.
pub fn fig7(scale: &Scale) -> Result<()> {
    let bundle = build_bundle(DatasetKind::Wiki, scale)?;
    let models = models::train_all(&bundle, scale)?;
    let split = &bundle.test_fast;
    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut run_point = |alpha: f32, beta: f32| -> Result<()> {
        let cfg = TasteConfig { alpha, beta, ..Default::default() };
        let report = run_taste(&models.taste, split, cfg)?;
        let scores = evaluate_report(&report, &split.truth, split.ntypes);
        let not_scanned = 1.0 - report.scanned_ratio();
        rows.push(vec![
            format!("{alpha:.1}"),
            format!("{beta:.1}"),
            score(scores.f1),
            pct(not_scanned),
        ]);
        out.push(json!({
            "alpha": alpha, "beta": beta, "f1": scores.f1, "not_scanned_ratio": not_scanned,
        }));
        Ok(())
    };
    for alpha in [0.1f32, 0.2, 0.3, 0.4, 0.5] {
        run_point(alpha, 0.9)?;
    }
    for beta in [0.5f32, 0.6, 0.7, 0.8] {
        run_point(0.1, beta)?;
    }
    print_table(
        "Fig 7: effects of alpha and beta (SynthWiki)",
        &["alpha", "beta", "F1", "not scanned"],
        &rows,
    );
    write_json("fig7", &json!(out));
    Ok(())
}

/// Fig. 8 — impact of the column-split threshold `l` and the cell count
/// `n` on the Wiki corpus.
pub fn fig8(scale: &Scale) -> Result<()> {
    let bundle = build_bundle(DatasetKind::Wiki, scale)?;
    let models = models::train_all(&bundle, scale)?;
    let split = &bundle.test_timed;
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for l in [4usize, 8, 12, 16, 20] {
        let cfg = TasteConfig { l, ..Default::default() };
        let report = run_taste(&models.taste, split, cfg)?;
        let scores = evaluate_report(&report, &split.truth, split.ntypes);
        rows.push(vec![
            format!("l={l}, n=10"),
            secs(report.wall_time),
            score(scores.f1),
        ]);
        out.push(json!({
            "sweep": "l", "l": l, "n": 10,
            "time_s": report.wall_time.as_secs_f64(), "f1": scores.f1,
        }));
    }
    for n in [2usize, 4, 6, 8, 10] {
        let cfg = TasteConfig { n, ..Default::default() };
        let report = run_taste(&models.taste, split, cfg)?;
        let scores = evaluate_report(&report, &split.truth, split.ntypes);
        rows.push(vec![
            format!("l=20, n={n}"),
            secs(report.wall_time),
            score(scores.f1),
        ]);
        out.push(json!({
            "sweep": "n", "l": 20, "n": n,
            "time_s": report.wall_time.as_secs_f64(), "f1": scores.f1,
        }));
    }
    print_table("Fig 8: impact of l and n (SynthWiki)", &["setting", "time", "F1"], &rows);
    write_json("fig8", &json!(out));
    Ok(())
}

/// Fault sweep — robustness of the engine under seeded fault injection
/// on the SynthGit test database: transient scan faults and connection
/// drops at increasing rates, with retries and graceful degradation on.
///
/// Because a fault decision is one uniform roll compared against
/// cumulative rate thresholds, a higher rate fails a strict superset of
/// the operations of a lower rate at the same seed: degraded columns are
/// monotone non-decreasing, F1 monotone non-increasing (degraded columns
/// keep P1-only verdicts), and wall time non-decreasing (backoff sleeps
/// plus re-paid scans) across the sweep.
pub fn fault_sweep(scale: &Scale) -> Result<()> {
    let bundle = build_bundle(DatasetKind::Git, scale)?;
    let models = models::train_all(&bundle, scale)?;
    let split = &bundle.test_timed;
    // Sequential mode + an effectively disabled breaker keep the sweep
    // deterministic: every point's degradations come from per-table retry
    // exhaustion alone, not wall-clock-dependent breaker state.
    let cfg = TasteConfig {
        l: bundle.kind.default_l(),
        pipelining: false,
        retry: RetryConfig {
            breaker_threshold: 1_000_000,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(5),
            ..RetryConfig::default()
        },
        ..TasteConfig::default()
    };
    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut baseline = split.db.ledger().snapshot();
    for rate in [0.0f64, 0.05, 0.1, 0.2, 0.4] {
        split.db.set_fault_profile(FaultProfile::flaky(scale.seed, rate));
        let report = run_taste(&models.taste, split, cfg)?;
        let injected = split.db.ledger().snapshot_delta(&mut baseline);
        let scores = evaluate_report(&report, &split.truth, split.ntypes);
        let degraded_ratio = if report.total_columns == 0 {
            0.0
        } else {
            report.degraded_columns() as f64 / report.total_columns as f64
        };
        rows.push(vec![
            format!("{rate:.2}"),
            secs(report.wall_time),
            score(scores.f1),
            pct(degraded_ratio),
            report.total_retries().to_string(),
            injected.failed_queries.to_string(),
        ]);
        out.push(json!({
            "fault_rate": rate,
            "time_s": report.wall_time.as_secs_f64(),
            "f1": scores.f1,
            "degraded_ratio": degraded_ratio,
            "degraded_tables": report.degraded_tables(),
            "retries": report.total_retries(),
            "backoff_s": report.total_backoff().as_secs_f64(),
            "failed_queries": injected.failed_queries,
            "dropped_connections": injected.dropped_connections,
            "reconnects": injected.reconnects,
            "wasted_bytes": injected.wasted_bytes,
        }));
    }
    split.db.set_fault_profile(FaultProfile::none());
    print_table(
        "Fault sweep: graceful degradation under injected faults (SynthGit)",
        &["fault rate", "time", "F1", "degraded cols", "retries", "failed queries"],
        &rows,
    );
    write_json("fault_sweep", &json!(out));
    Ok(())
}

/// Overload sweep — serving behavior as offered load crosses capacity
/// on the SynthGit test database (cloud latency profile).
///
/// One "capacity unit" is the controller's in-flight budget; the sweep
/// offers 0.5×, 1×, 2×, and 4× that many tables per batch and compares
/// the overload-controlled engine against the control-disabled engine
/// at each point: goodput (tables finishing inside the latency budget),
/// p50/p99 per-table latency, the shed and rejected fractions, and any
/// brownout activity. Below capacity the two engines should match; past
/// capacity the controlled engine trades P2 coverage (shed tables keep
/// their P1 verdicts) for bounded queues and on-budget latency.
pub fn overload_sweep(scale: &Scale) -> Result<()> {
    let bundle = build_bundle(DatasetKind::Git, scale)?;
    let models = models::train_all(&bundle, scale)?;
    let split = &bundle.test_timed;
    let ids_all = split.db.table_ids();
    let unit = (ids_all.len() / 4).max(1);
    let budget = Duration::from_millis(250);
    let base = || TasteConfig { l: bundle.kind.default_l(), ..TasteConfig::default() };
    let controlled = || TasteConfig {
        overload: OverloadConfig {
            enabled: true,
            max_in_flight: unit,
            max_queued: unit * 2,
            deadline: Some(budget),
            queue_target: Duration::from_millis(2),
            queue_window: Duration::from_millis(8),
            ..OverloadConfig::default()
        },
        ..base()
    };
    let pctl = |lat: &[Duration], p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        lat[((lat.len() - 1) as f64 * p).round() as usize].as_secs_f64() * 1000.0
    };

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for factor in [0.5f64, 1.0, 2.0, 4.0] {
        let n = ((unit as f64 * factor).round() as usize).clamp(1, ids_all.len());
        let ids = &ids_all[..n];

        let off = TasteEngine::new(Arc::clone(&models.taste), base())?.detect_batch(&split.db, ids)?;
        let on = TasteEngine::new(Arc::clone(&models.taste), controlled())?.detect_batch(&split.db, ids)?;
        let s = &on.overload;
        assert_eq!(s.submitted, s.admitted + s.rejected, "admission accounting must close");

        let mut lat: Vec<Duration> = on
            .tables
            .iter()
            .filter(|t| t.outcome.is_final() && t.latency > Duration::ZERO)
            .map(|t| t.latency)
            .collect();
        lat.sort();
        let shed_frac = on.shed_tables() as f64 / n as f64;
        rows.push(vec![
            format!("{factor:.1}x"),
            n.to_string(),
            format!("{} / {}", on.tables_within(budget), off.tables_within(budget)),
            format!("{:.0}ms", pctl(&lat, 0.50)),
            format!("{:.0}ms", pctl(&lat, 0.99)),
            pct(shed_frac),
            on.rejected_tables().to_string(),
            s.brownout_entries.to_string(),
        ]);
        out.push(json!({
            "load_factor": factor,
            "offered_tables": n,
            "capacity_unit": unit,
            "budget_ms": budget.as_secs_f64() * 1000.0,
            "goodput_on": on.tables_within(budget),
            "goodput_off": off.tables_within(budget),
            "p50_ms": pctl(&lat, 0.50),
            "p99_ms": pctl(&lat, 0.99),
            "shed_tables": on.shed_tables(),
            "shed_fraction": shed_frac,
            "rejected_tables": on.rejected_tables(),
            "queue_peak": s.queue_peak,
            "brownout_entries": s.brownout_entries,
            "transitions": s.transitions,
            "aimd_increases": s.aimd_increases,
            "aimd_decreases": s.aimd_decreases,
            "final_tp1_limit": s.final_tp1_limit,
            "final_tp2_limit": s.final_tp2_limit,
            "wall_time_on_s": on.wall_time.as_secs_f64(),
            "wall_time_off_s": off.wall_time.as_secs_f64(),
        }));
    }
    print_table(
        "Overload sweep: goodput and shedding vs offered load (SynthGit)",
        &["load", "offered", "goodput on/off", "p50", "p99", "shed", "rejected", "brownouts"],
        &rows,
    );
    write_json("BENCH_overload", &json!(out));
    Ok(())
}

/// Crash/resume — kill-and-resume determinism of the journaled engine
/// on a flaky SynthGit tenant: an uninterrupted journaled run, a run
/// halted mid-batch (simulated process kill between journal appends),
/// and a resume from the halted run's journal. The resumed report must
/// reproduce the uninterrupted verdicts exactly, with no table
/// processed twice.
pub fn crash_resume(scale: &Scale) -> Result<()> {
    let bundle = build_bundle(DatasetKind::Git, scale)?;
    let models = models::train_all(&bundle, scale)?;
    let split = &bundle.test_fast;
    let ids = split.db.table_ids();
    // Sequential mode pins the halt point: exactly `halt_at` tables are
    // journaled before the simulated kill.
    let cfg = TasteConfig {
        l: bundle.kind.default_l(),
        pipelining: false,
        retry: RetryConfig {
            breaker_threshold: 1_000_000,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(5),
            ..RetryConfig::default()
        },
        ..TasteConfig::default()
    };
    let full_path = std::env::temp_dir().join("taste-repro-journal-full.bin");
    let crash_path = std::env::temp_dir().join("taste-repro-journal-crash.bin");
    let flaky = || FaultProfile::flaky(scale.seed, 0.1);

    // Uninterrupted reference run.
    split.db.set_fault_profile(flaky());
    let engine = TasteEngine::new(Arc::clone(&models.taste), cfg)?;
    let full = engine.detect_batch_journaled(&split.db, &ids, &full_path)?;

    // Halted run: dies after half the batch is journaled. Reinstalling
    // the profile resets the fault layer's per-table attempt counters,
    // so each run sees the same per-table fault rolls.
    let halt_at = (ids.len() / 2).max(1);
    let halt_cfg = TasteConfig {
        hardening: HardeningConfig { halt_after_tables: Some(halt_at), ..Default::default() },
        ..cfg
    };
    split.db.set_fault_profile(flaky());
    let halt_engine = TasteEngine::new(Arc::clone(&models.taste), halt_cfg)?;
    let aborted = halt_engine.detect_batch_journaled(&split.db, &ids, &crash_path)?;

    // "Process restart": fresh engine, fresh fault counters, resume
    // from the journal.
    split.db.set_fault_profile(flaky());
    let resume_engine = TasteEngine::new(Arc::clone(&models.taste), cfg)?;
    let resumed = resume_engine.resume(&split.db, &ids, &crash_path)?;
    split.db.set_fault_profile(FaultProfile::none());

    let identical = full.tables.len() == resumed.tables.len()
        && full
            .tables
            .iter()
            .zip(&resumed.tables)
            .all(|(a, b)| a.table == b.table && a.admitted == b.admitted);
    let full_scores = evaluate_report(&full, &split.truth, split.ntypes);
    let resumed_scores = evaluate_report(&resumed, &split.truth, split.ntypes);
    let mut rows = Vec::new();
    for (label, report, scores) in [
        ("uninterrupted", &full, full_scores),
        ("halted", &aborted, evaluate_report(&aborted, &split.truth, split.ntypes)),
        ("resumed", &resumed, resumed_scores),
    ] {
        rows.push(vec![
            label.to_string(),
            report.tables.len().to_string(),
            report.cancelled_tables().to_string(),
            report.replayed_tables.to_string(),
            secs(report.wall_time),
            score(scores.f1),
        ]);
    }
    print_table(
        "Crash/resume: journaled detection under a mid-batch kill (SynthGit)",
        &["run", "tables", "cancelled", "replayed", "time", "F1"],
        &rows,
    );
    write_json(
        "crash_resume",
        &json!({
            "tables": ids.len(),
            "halt_after": halt_at,
            "cancelled_at_halt": aborted.cancelled_tables(),
            "replayed_on_resume": resumed.replayed_tables,
            "journal_corrupt_records": resumed.journal_corrupt_records,
            "journal_torn_tail": resumed.journal_torn_tail,
            "verdicts_identical": identical,
            "f1_uninterrupted": full_scores.f1,
            "f1_resumed": resumed_scores.f1,
        }),
    );
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&crash_path);
    if !identical {
        return Err(TasteError::invalid(
            "resumed verdicts diverged from the uninterrupted run",
        ));
    }
    Ok(())
}

/// Training-resilience benchmark — checkpoint overhead and resume
/// fidelity for the crash-safe fine-tuning loop.
///
/// Three passes over the same SynthGit training set with the same
/// model seed: a bare run without checkpointing, an uninterrupted run
/// checkpointing every few steps (their throughput gap is the
/// checkpoint tax), and a run killed halfway then resumed from disk.
/// The checkpointed run must match the bare run bit for bit (saving
/// state must not perturb training), and the resumed run must match
/// both in final parameters and per-step losses.
pub fn train_resume(scale: &Scale) -> Result<()> {
    use crate::datasets::training_inputs_from_split;
    use taste_model::trainer::train_adtd_resumable;
    use taste_model::{TrainConfig, TrainResilience};
    use taste_nn::checkpoint::CheckpointPolicy;
    use taste_nn::ParamStore;

    let bundle = build_bundle(DatasetKind::Git, scale)?;
    let inputs =
        training_inputs_from_split(&bundle.corpus, Split::Train, false, bundle.kind.default_l(), 50, 10)?;
    // Checkpoint overhead is per-step; two epochs give plenty of steps.
    let cfg = TrainConfig { epochs: scale.epochs.clamp(1, 2), ..models::train_config(scale) };
    let total_steps = (inputs.len().div_ceil(cfg.batch_size) * cfg.epochs) as u64;
    let policy = CheckpointPolicy { every_n_steps: 5, keep_last_k: 2 };
    let fresh_model = || {
        Adtd::new(models::experiment_config(), bundle.tokenizer.clone(), bundle.corpus.ntypes(), scale.seed)
    };
    let param_bits = |store: &ParamStore| -> Vec<(String, Vec<u32>)> {
        let mut out: Vec<(String, Vec<u32>)> = store
            .ids()
            .map(|id| {
                let bits = store.value(id).as_slice().iter().map(|v| v.to_bits()).collect();
                (store.name(id).to_owned(), bits)
            })
            .collect();
        out.sort();
        out
    };
    let training = |e: TasteError| TasteError::Training(e.to_string());

    // Pass 1: the bare loop.
    let mut bare = fresh_model();
    let t0 = Instant::now();
    let bare_report =
        train_adtd_resumable(&mut bare, &inputs, &cfg, &TrainResilience::default()).map_err(training)?;
    let bare_time = t0.elapsed();

    // Pass 2: same run with periodic checkpoints.
    let ckpt_dir = std::env::temp_dir().join("taste-repro-train-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let res = TrainResilience { dir: Some(ckpt_dir.clone()), policy, ..TrainResilience::default() };
    let mut ckpt = fresh_model();
    let t1 = Instant::now();
    let ckpt_report = train_adtd_resumable(&mut ckpt, &inputs, &cfg, &res).map_err(training)?;
    let ckpt_time = t1.elapsed();

    // Pass 3: killed halfway, then resumed from disk into a freshly
    // constructed model, as after a real process death.
    let kill_dir = std::env::temp_dir().join("taste-repro-train-kill");
    let _ = std::fs::remove_dir_all(&kill_dir);
    let halt_at = (total_steps / 2).max(1);
    let kill = TrainResilience {
        dir: Some(kill_dir.clone()),
        policy,
        halt_after_steps: Some(halt_at),
        ..TrainResilience::default()
    };
    let mut halted_model = fresh_model();
    let halted_report = train_adtd_resumable(&mut halted_model, &inputs, &cfg, &kill).map_err(training)?;
    let resume = TrainResilience { halt_after_steps: None, ..kill };
    let mut resumed = fresh_model();
    let resumed_report = train_adtd_resumable(&mut resumed, &inputs, &cfg, &resume).map_err(training)?;

    let transparent = param_bits(&bare.store) == param_bits(&ckpt.store);
    let loss_bits = |r: &taste_model::ResumableReport| -> Vec<u32> {
        r.step_losses.iter().map(|v| v.to_bits()).collect()
    };
    let identical = param_bits(&ckpt.store) == param_bits(&resumed.store)
        && loss_bits(&ckpt_report) == loss_bits(&resumed_report);
    let sps = |steps: u64, t: Duration| steps as f64 / t.as_secs_f64().max(1e-9);
    let bare_sps = sps(bare_report.health.steps_applied, bare_time);
    let ckpt_sps = sps(ckpt_report.health.steps_applied, ckpt_time);
    let overhead_pct = (1.0 - ckpt_sps / bare_sps.max(1e-9)) * 100.0;

    let rows = vec![
        vec![
            "bare".to_string(),
            bare_report.health.steps_applied.to_string(),
            secs(bare_time),
            format!("{bare_sps:.1}"),
            "0".to_string(),
        ],
        vec![
            "checkpointed".to_string(),
            ckpt_report.health.steps_applied.to_string(),
            secs(ckpt_time),
            format!("{ckpt_sps:.1}"),
            ckpt_report.health.checkpoints_written.to_string(),
        ],
        vec![
            "killed+resumed".to_string(),
            resumed_report.health.steps_applied.to_string(),
            "-".to_string(),
            "-".to_string(),
            (halted_report.health.checkpoints_written + resumed_report.health.checkpoints_written)
                .to_string(),
        ],
    ];
    print_table(
        "Training resilience: checkpoint overhead and resume fidelity (SynthGit)",
        &["run", "steps", "time", "steps/sec", "ckpts"],
        &rows,
    );
    println!(
        "  checkpoint overhead {overhead_pct:.1}%  transparent={transparent}  resume_identical={identical}"
    );
    write_json(
        "BENCH_train",
        &json!({
            "inputs": inputs.len(),
            "total_steps": total_steps,
            "checkpoint_every_n_steps": policy.every_n_steps,
            "steps_per_sec_bare": bare_sps,
            "steps_per_sec_checkpointed": ckpt_sps,
            "checkpoint_overhead_pct": overhead_pct,
            "checkpoints_written": ckpt_report.health.checkpoints_written,
            "halted_at_step": halt_at,
            "resumed_from_step": resumed_report.health.resumed_from_step,
            "checkpoint_transparent": transparent,
            "resume_identical": identical,
        }),
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
    if !transparent {
        return Err(TasteError::invalid("checkpointing perturbed the training trajectory"));
    }
    if !identical {
        return Err(TasteError::invalid("resumed training diverged from the uninterrupted run"));
    }
    Ok(())
}

/// Serving-backend benchmark — P1/P2 inference throughput (columns/sec)
/// of the tape-free executor against the recording tape on identical
/// inputs, plus an end-to-end parity check between the two backends.
///
/// This measures raw model serving (no database, no scheduler): every
/// chunk of the SynthWiki test split is pushed through `encode_meta` +
/// `predict_meta` (P1) and, over cached encodings with every column
/// scanned, `predict_content` (P2). The same long-lived [`Inferencer`]
/// serves all chunks of a backend's pass, so the tape-free numbers
/// reflect steady-state buffer reuse exactly as in the engine's worker
/// threads.
pub fn infer_bench(scale: &Scale) -> Result<()> {
    let bundle = build_bundle(DatasetKind::Wiki, scale)?;
    let model = models::taste_model(&bundle, scale, false, "plain")?;
    let cfg = TasteConfig { l: bundle.kind.default_l(), ..TasteConfig::default() };
    let ntypes = bundle.test_fast.ntypes;
    let inputs: Vec<ModelInput> = bundle
        .corpus
        .split_tables(Split::Test)
        .into_iter()
        .flat_map(|t| training_inputs(t, ntypes, cfg.l, cfg.m, cfg.n, false))
        .collect();
    if inputs.is_empty() {
        return Err(TasteError::invalid("test split produced no model inputs"));
    }
    let cols: usize = inputs.iter().map(|i| i.chunk.col_texts.len()).sum();
    let repeats = scale.timing_runs.max(1);
    let contents: Vec<Vec<Option<ColumnContent>>> = inputs
        .iter()
        .map(|inp| inp.contents.iter().cloned().map(Some).collect())
        .collect();

    struct BackendRun {
        p1_s: f64,
        p2_s: f64,
        p1_preds: Vec<Vec<Vec<f32>>>,
        p2_preds: Vec<Vec<Option<Vec<f32>>>>,
    }

    let run_backend = |mode: ExecMode| -> BackendRun {
        let mut inf = Inferencer::new(mode);
        // Warm pass: sizes the executor's arena so the timed passes
        // measure steady-state serving; its encodings feed P2 below.
        let encs: Vec<_> = inputs.iter().map(|inp| inf.encode_meta(&model, &inp.chunk)).collect();

        let t0 = Instant::now();
        let mut p1_preds = Vec::new();
        for _ in 0..repeats {
            p1_preds = inputs
                .iter()
                .map(|inp| {
                    let enc = inf.encode_meta(&model, &inp.chunk);
                    inf.predict_meta(&model, &enc, &inp.chunk.nonmeta)
                })
                .collect();
        }
        let p1_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let mut p2_preds = Vec::new();
        for _ in 0..repeats {
            p2_preds = inputs
                .iter()
                .zip(&encs)
                .zip(&contents)
                .map(|((inp, enc), cont)| inf.predict_content(&model, enc, cont, &inp.chunk.nonmeta))
                .collect();
        }
        let p2_s = t0.elapsed().as_secs_f64();
        BackendRun { p1_s, p2_s, p1_preds, p2_preds }
    };

    let taped = run_backend(ExecMode::Taped);
    let free = run_backend(ExecMode::TapeFree);

    // Backend parity on every probability the bench produced.
    let mut max_diff = 0f32;
    for (a, b) in taped.p1_preds.iter().flatten().zip(free.p1_preds.iter().flatten()) {
        for (x, y) in a.iter().zip(b) {
            max_diff = max_diff.max((x - y).abs());
        }
    }
    for (a, b) in taped.p2_preds.iter().flatten().zip(free.p2_preds.iter().flatten()) {
        match (a, b) {
            (Some(a), Some(b)) => {
                for (x, y) in a.iter().zip(b) {
                    max_diff = max_diff.max((x - y).abs());
                }
            }
            (None, None) => {}
            _ => return Err(TasteError::invalid("backends disagree on which columns have P2 verdicts")),
        }
    }

    let timed_cols = (cols * repeats) as f64;
    let mut rows = Vec::new();
    for (name, run) in [("tape (training executor)", &taped), ("tape-free (serving executor)", &free)] {
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", timed_cols / run.p1_s),
            format!("{:.0}", timed_cols / run.p2_s),
            format!("{:.3}s", run.p1_s),
            format!("{:.3}s", run.p2_s),
        ]);
    }
    let p1_speedup = taped.p1_s / free.p1_s;
    let p2_speedup = taped.p2_s / free.p2_s;
    rows.push(vec![
        "speedup".to_string(),
        format!("{p1_speedup:.2}x"),
        format!("{p2_speedup:.2}x"),
        String::new(),
        String::new(),
    ]);
    print_table(
        "Serving backends: inference throughput (SynthWiki test split)",
        &["backend", "P1 cols/s", "P2 cols/s", "P1 time", "P2 time"],
        &rows,
    );
    println!("backend parity: max |Δp| = {max_diff:.2e} over {cols} columns x {repeats} runs");
    write_json(
        "BENCH_infer",
        &json!({
            "dataset": DatasetKind::Wiki.label(),
            "chunks": inputs.len(),
            "columns": cols,
            "repeats": repeats,
            "p1": {
                "tape_s": taped.p1_s, "tape_free_s": free.p1_s,
                "tape_cols_per_s": timed_cols / taped.p1_s,
                "tape_free_cols_per_s": timed_cols / free.p1_s,
                "speedup": p1_speedup,
            },
            "p2": {
                "tape_s": taped.p2_s, "tape_free_s": free.p2_s,
                "tape_cols_per_s": timed_cols / taped.p2_s,
                "tape_free_cols_per_s": timed_cols / free.p2_s,
                "speedup": p2_speedup,
            },
            "parity_max_abs_diff": max_diff,
        }),
    );
    if max_diff > 1e-5 {
        return Err(TasteError::invalid("tape and tape-free predictions diverged beyond 1e-5"));
    }
    Ok(())
}

/// Compute-kernel benchmark — GFLOP/s of each kernel variant on the
/// encoder's hot matmul shapes, plus end-to-end P1/P2 serving
/// throughput at kernel widths 1 vs 4 with a bitwise parity check.
///
/// The variant ladder per shape: the pre-vectorization scalar kernel
/// (k-outer axpy with the `a == 0.0` skip, preserved here so the delta
/// is measured against what `matmul_into` actually used to run), the
/// 8-wide lane kernel, the packed-panel kernel, the packed kernel with
/// fused bias + GELU, and the lane kernel at 2 and 4 row-parallel
/// threads. Every variant's output is asserted equal to the scalar
/// reference before its timing is reported.
pub fn kernel_bench(scale: &Scale) -> Result<()> {
    use taste_nn::kernels::{self, Act, PackedB};
    use taste_nn::Matrix;

    // The pre-vectorization matmul kernel, verbatim.
    fn scalar_reference(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.rows() {
            let orow = out.row_slice_mut(i);
            orow.iter_mut().for_each(|v| *v = 0.0);
            for (kk, &av) in a.row_slice(i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in orow.iter_mut().zip(b.row_slice(kk)) {
                    *o += av * bv;
                }
            }
        }
    }

    fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
        let data = (0..rows * cols)
            .map(|i| {
                let h = (i as u64).wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let h = h ^ (h >> 31);
                let h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                (h >> 40) as f32 / (1u64 << 24) as f32 - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    // The hot shapes of the paper-scale encoder (L=4, H=312, I=1200)
    // and the classifier heads, at a typical packed-sequence length.
    let shapes: [(&str, usize, usize, usize); 4] = [
        ("attn proj 64x312x312", 64, 312, 312),
        ("ffn up 64x312x1200", 64, 312, 1200),
        ("ffn down 64x1200x312", 64, 1200, 312),
        ("head 32x326x64", 32, 326, 64),
    ];

    let mut rows = Vec::new();
    let mut shape_results = Vec::new();
    for (name, m, k, n) in shapes {
        let a = fill(m, k, 1);
        let b = fill(k, n, 2);
        let bias = fill(1, n, 3);
        let packed = PackedB::pack(&b);
        let flops = 2.0 * (m * k * n) as f64;
        // Size each measurement to a fixed work volume so small shapes
        // get proportionally more iterations.
        let iters = ((1u64 << 28) as f64 / flops).ceil() as usize * scale.timing_runs.max(1);

        let mut reference = Matrix::zeros(m, n);
        scalar_reference(&a, &b, &mut reference);

        let mut out = Matrix::zeros(m, n);
        let mut time_variant = |f: &mut dyn FnMut(&mut Matrix)| -> f64 {
            f(&mut out); // warm + correctness outside the timed loop
            assert_eq!(out, reference, "kernel variant diverged from the scalar reference");
            let t0 = Instant::now();
            for _ in 0..iters {
                f(&mut out);
            }
            flops * iters as f64 / t0.elapsed().as_secs_f64() / 1e9
        };

        let scalar = time_variant(&mut |o| scalar_reference(&a, &b, o));
        let lane = time_variant(&mut |o| kernels::matmul_into_mt(&a, &b, 1, o));
        let packed_g = time_variant(&mut |o| kernels::matmul_packed_into(&a, &packed, None, Act::Ident, 1, o));
        let lane_t2 = time_variant(&mut |o| kernels::matmul_into_mt(&a, &b, 2, o));
        let lane_t4 = time_variant(&mut |o| kernels::matmul_into_mt(&a, &b, 4, o));
        // The fused kernel computes more (bias + GELU) so it is timed
        // against its own composed reference, not the plain matmul.
        let mut fused_ref = reference.clone();
        for r in 0..fused_ref.rows() {
            for (v, &bv) in fused_ref.row_slice_mut(r).iter_mut().zip(bias.as_slice()) {
                let x = *v + bv;
                *v = Act::Gelu.apply(x);
            }
        }
        let mut fused_out = Matrix::zeros(m, n);
        kernels::matmul_packed_into(&a, &packed, Some(&bias), Act::Gelu, 1, &mut fused_out);
        assert_eq!(fused_out, fused_ref, "fused bias+GELU diverged from composed ops");
        let t0 = Instant::now();
        for _ in 0..iters {
            kernels::matmul_packed_into(&a, &packed, Some(&bias), Act::Gelu, 1, &mut fused_out);
        }
        let fused = flops * iters as f64 / t0.elapsed().as_secs_f64() / 1e9;

        rows.push(vec![
            name.to_string(),
            format!("{scalar:.2}"),
            format!("{lane:.2}"),
            format!("{packed_g:.2}"),
            format!("{fused:.2}"),
            format!("{lane_t2:.2}"),
            format!("{lane_t4:.2}"),
            format!("{:.2}x", lane / scalar),
        ]);
        shape_results.push(json!({
            "shape": name, "m": m, "k": k, "n": n, "iters": iters,
            "gflops": {
                "scalar_reference": scalar,
                "lane": lane,
                "packed": packed_g,
                "packed_fused_bias_gelu": fused,
                "lane_threads2": lane_t2,
                "lane_threads4": lane_t4,
            },
            "lane_speedup_vs_scalar": lane / scalar,
            "packed_speedup_vs_scalar": packed_g / scalar,
        }));
    }
    print_table(
        "Kernel GFLOP/s by variant (single core unless noted)",
        &["shape", "scalar", "lane", "packed", "fused", "lane t=2", "lane t=4", "lane/scalar"],
        &rows,
    );

    // End-to-end serving deltas: P1/P2 columns/sec at kernel width 1
    // vs 4, over the SynthWiki test split, with bitwise parity.
    let bundle = build_bundle(DatasetKind::Wiki, scale)?;
    let model = models::taste_model(&bundle, scale, false, "plain")?;
    let cfg = TasteConfig { l: bundle.kind.default_l(), ..TasteConfig::default() };
    let ntypes = bundle.test_fast.ntypes;
    let inputs: Vec<ModelInput> = bundle
        .corpus
        .split_tables(Split::Test)
        .into_iter()
        .flat_map(|t| training_inputs(t, ntypes, cfg.l, cfg.m, cfg.n, false))
        .collect();
    if inputs.is_empty() {
        return Err(TasteError::invalid("test split produced no model inputs"));
    }
    let cols: usize = inputs.iter().map(|i| i.chunk.col_texts.len()).sum();
    let repeats = scale.timing_runs.max(1);
    let contents: Vec<Vec<Option<ColumnContent>>> = inputs
        .iter()
        .map(|inp| inp.contents.iter().cloned().map(Some).collect())
        .collect();

    struct ThreadRun {
        p1_s: f64,
        p2_s: f64,
        p1_preds: Vec<Vec<Vec<f32>>>,
        p2_preds: Vec<Vec<Option<Vec<f32>>>>,
    }
    let run_width = |threads: usize| -> ThreadRun {
        let mut inf = Inferencer::with_kernel_threads(ExecMode::TapeFree, threads);
        let encs: Vec<_> = inputs.iter().map(|inp| inf.encode_meta(&model, &inp.chunk)).collect();
        let t0 = Instant::now();
        let mut p1_preds = Vec::new();
        for _ in 0..repeats {
            p1_preds = inputs
                .iter()
                .map(|inp| {
                    let enc = inf.encode_meta(&model, &inp.chunk);
                    inf.predict_meta(&model, &enc, &inp.chunk.nonmeta)
                })
                .collect();
        }
        let p1_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut p2_preds = Vec::new();
        for _ in 0..repeats {
            p2_preds = inputs
                .iter()
                .zip(&encs)
                .zip(&contents)
                .map(|((inp, enc), cont)| inf.predict_content(&model, enc, cont, &inp.chunk.nonmeta))
                .collect();
        }
        ThreadRun { p1_s, p2_s: t0.elapsed().as_secs_f64(), p1_preds, p2_preds }
    };
    let one = run_width(1);
    let four = run_width(4);
    if one.p1_preds != four.p1_preds || one.p2_preds != four.p2_preds {
        return Err(TasteError::invalid("kernel_threads=4 predictions are not bit-identical to kernel_threads=1"));
    }

    let timed_cols = (cols * repeats) as f64;
    print_table(
        "Serving throughput by kernel width (tape-free, SynthWiki test split)",
        &["kernel_threads", "P1 cols/s", "P2 cols/s"],
        &[
            vec!["1".into(), format!("{:.0}", timed_cols / one.p1_s), format!("{:.0}", timed_cols / one.p2_s)],
            vec!["4".into(), format!("{:.0}", timed_cols / four.p1_s), format!("{:.0}", timed_cols / four.p2_s)],
            vec![
                "speedup".into(),
                format!("{:.2}x", one.p1_s / four.p1_s),
                format!("{:.2}x", one.p2_s / four.p2_s),
            ],
        ],
    );
    println!("thread parity: kernel_threads 1 vs 4 predictions bit-identical over {cols} columns");

    write_json(
        "BENCH_kernels",
        &json!({
            "shapes": shape_results,
            "serving": {
                "dataset": DatasetKind::Wiki.label(),
                "chunks": inputs.len(),
                "columns": cols,
                "repeats": repeats,
                "threads1": { "p1_s": one.p1_s, "p2_s": one.p2_s,
                               "p1_cols_per_s": timed_cols / one.p1_s,
                               "p2_cols_per_s": timed_cols / one.p2_s },
                "threads4": { "p1_s": four.p1_s, "p2_s": four.p2_s,
                               "p1_cols_per_s": timed_cols / four.p1_s,
                               "p2_cols_per_s": timed_cols / four.p2_s },
                "p1_speedup": one.p1_s / four.p1_s,
                "p2_speedup": one.p2_s / four.p2_s,
                "bitwise_parity": true,
            },
        }),
    );
    Ok(())
}

/// Micro-batched serving benchmark — P1/P2 columns/sec as a function of
/// the micro-batch size (table chunks fused per forward pass) at kernel
/// widths 1 and 4, with a bitwise parity gate against the per-chunk
/// serving path.
///
/// This measures the payoff of the engine's cross-table
/// [`taste_framework::BatchPlanner`]: fused passes amortize per-call
/// executor dispatch and reuse packed weights across every column in
/// the batch, while block-diagonal attention keeps each chunk's rows
/// bit-identical to what it would get alone.
pub fn batch_bench(scale: &Scale) -> Result<()> {
    use taste_model::{ContentBatchItem, MetaEncoding, TableChunk};

    let bundle = build_bundle(DatasetKind::Wiki, scale)?;
    let model = models::taste_model(&bundle, scale, false, "plain")?;
    let cfg = TasteConfig { l: bundle.kind.default_l(), ..TasteConfig::default() };
    let ntypes = bundle.test_fast.ntypes;
    let inputs: Vec<ModelInput> = bundle
        .corpus
        .split_tables(Split::Test)
        .into_iter()
        .flat_map(|t| training_inputs(t, ntypes, cfg.l, cfg.m, cfg.n, false))
        .collect();
    if inputs.is_empty() {
        return Err(TasteError::invalid("test split produced no model inputs"));
    }
    let cols: usize = inputs.iter().map(|i| i.chunk.col_texts.len()).sum();
    let repeats = scale.timing_runs.max(1);
    let contents: Vec<Vec<Option<ColumnContent>>> = inputs
        .iter()
        .map(|inp| inp.contents.iter().cloned().map(Some).collect())
        .collect();

    // Parity oracle: the per-chunk serving path at kernel width 1.
    let (ref_p1, ref_p2) = {
        let mut inf = Inferencer::new(ExecMode::TapeFree);
        let encs: Vec<MetaEncoding> = inputs.iter().map(|inp| inf.encode_meta(&model, &inp.chunk)).collect();
        let p1: Vec<Vec<Vec<f32>>> = inputs
            .iter()
            .zip(&encs)
            .map(|(inp, enc)| inf.predict_meta(&model, enc, &inp.chunk.nonmeta))
            .collect();
        let p2: Vec<Vec<Option<Vec<f32>>>> = inputs
            .iter()
            .zip(&encs)
            .zip(&contents)
            .map(|((inp, enc), cont)| inf.predict_content(&model, enc, cont, &inp.chunk.nonmeta))
            .collect();
        (p1, p2)
    };

    struct Point {
        threads: usize,
        batch: usize,
        p1_s: f64,
        p2_s: f64,
    }
    let mut points: Vec<Point> = Vec::new();
    let batch_sizes = [1usize, 2, 4, 8, 16];
    // Min-of-k over interleaved passes: every repetition visits all
    // batch sizes back to back, so load drift on the host disturbs each
    // point alike, and the minimum pass is the least-disturbed run.
    let reps = repeats.max(3);
    for threads in [1usize, 4] {
        let mut inf = Inferencer::with_kernel_threads(ExecMode::TapeFree, threads);

        // Untimed warm + parity pass per batch size: every point must
        // reproduce the per-chunk oracle bit for bit before it is
        // measured. The encodings feed the timed P2 loops below.
        let mut encs: Vec<MetaEncoding> = Vec::with_capacity(inputs.len());
        for &batch in &batch_sizes {
            encs.clear();
            let mut p1_preds = Vec::new();
            for g in inputs.chunks(batch) {
                let chunks: Vec<&TableChunk> = g.iter().map(|i| &i.chunk).collect();
                let encs_g = inf.encode_meta_batch(&model, &chunks);
                let items: Vec<(&MetaEncoding, &[Vec<f32>])> = g
                    .iter()
                    .zip(&encs_g)
                    .map(|(i, e)| (e, i.chunk.nonmeta.as_slice()))
                    .collect();
                p1_preds.extend(inf.predict_meta_batch(&model, &items));
                encs.extend(encs_g);
            }
            let mut p2_preds = Vec::new();
            let mut off = 0;
            for g in inputs.chunks(batch) {
                let items: Vec<ContentBatchItem<'_>> = g
                    .iter()
                    .enumerate()
                    .map(|(j, i)| (&encs[off + j], contents[off + j].as_slice(), i.chunk.nonmeta.as_slice()))
                    .collect();
                p2_preds.extend(inf.predict_content_batch(&model, &items));
                off += g.len();
            }
            if p1_preds != ref_p1 || p2_preds != ref_p2 {
                return Err(TasteError::invalid(format!(
                    "batched predictions diverged from the per-chunk path (batch={batch} threads={threads})"
                )));
            }
        }

        let mut p1_min = vec![f64::INFINITY; batch_sizes.len()];
        let mut p2_min = vec![f64::INFINITY; batch_sizes.len()];
        for _ in 0..reps {
            for (bi, &batch) in batch_sizes.iter().enumerate() {
                let t0 = Instant::now();
                for g in inputs.chunks(batch) {
                    let chunks: Vec<&TableChunk> = g.iter().map(|i| &i.chunk).collect();
                    let encs_g = inf.encode_meta_batch(&model, &chunks);
                    let items: Vec<(&MetaEncoding, &[Vec<f32>])> = g
                        .iter()
                        .zip(&encs_g)
                        .map(|(i, e)| (e, i.chunk.nonmeta.as_slice()))
                        .collect();
                    let _ = inf.predict_meta_batch(&model, &items);
                }
                p1_min[bi] = p1_min[bi].min(t0.elapsed().as_secs_f64());

                let t0 = Instant::now();
                let mut off = 0;
                for g in inputs.chunks(batch) {
                    let items: Vec<ContentBatchItem<'_>> = g
                        .iter()
                        .enumerate()
                        .map(|(j, i)| (&encs[off + j], contents[off + j].as_slice(), i.chunk.nonmeta.as_slice()))
                        .collect();
                    let _ = inf.predict_content_batch(&model, &items);
                    off += g.len();
                }
                p2_min[bi] = p2_min[bi].min(t0.elapsed().as_secs_f64());
            }
        }
        for (bi, &batch) in batch_sizes.iter().enumerate() {
            points.push(Point { threads, batch, p1_s: p1_min[bi], p2_s: p2_min[bi] });
        }
    }

    let timed_cols = cols as f64;
    let base_p2 = |threads: usize| {
        points
            .iter()
            .find(|p| p.threads == threads && p.batch == 1)
            .map(|p| p.p2_s)
            .expect("batch=1 point")
    };
    let mut rows = Vec::new();
    let mut point_json = Vec::new();
    for p in &points {
        let p2_speedup = base_p2(p.threads) / p.p2_s;
        rows.push(vec![
            p.threads.to_string(),
            p.batch.to_string(),
            format!("{:.0}", timed_cols / p.p1_s),
            format!("{:.0}", timed_cols / p.p2_s),
            format!("{p2_speedup:.2}x"),
        ]);
        point_json.push(json!({
            "kernel_threads": p.threads,
            "batch_chunks": p.batch,
            "p1_s": p.p1_s,
            "p2_s": p.p2_s,
            "p1_cols_per_s": timed_cols / p.p1_s,
            "p2_cols_per_s": timed_cols / p.p2_s,
            "p2_speedup_vs_batch1": p2_speedup,
        }));
    }
    print_table(
        "Micro-batched serving throughput (tape-free, SynthWiki test split)",
        &["kernel_threads", "batch (chunks)", "P1 cols/s", "P2 cols/s", "P2 vs batch=1"],
        &rows,
    );
    println!("batch parity: every point bit-identical to the per-chunk path over {cols} columns");
    println!(
        "host parallelism: {} (kernel_threads>1 and large-batch fusion only pay off with real cores)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    let p2_speedup_at_8 = points
        .iter()
        .filter(|p| p.batch >= 8)
        .map(|p| base_p2(p.threads) / p.p2_s)
        .fold(0.0f64, f64::max);
    println!("best P2 speedup at batch >= 8: {p2_speedup_at_8:.2}x vs batch=1");

    write_json(
        "BENCH_batching",
        &json!({
            "dataset": DatasetKind::Wiki.label(),
            "chunks": inputs.len(),
            "columns": cols,
            "timing": format!("min over {reps} interleaved passes"),
            "host_parallelism": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            "batch_sizes": batch_sizes,
            "points": point_json,
            "p2_speedup_at_batch8_or_more": p2_speedup_at_8,
            "bitwise_parity": true,
        }),
    );
    Ok(())
}

/// Hot model reload benchmark — registry publish/load latency, swap
/// visibility latency (offer → promoted incumbent), pin overhead on the
/// serving path, and the end-to-end throughput cost of an active canary
/// (shadow-scored Phase-1) against the rollout-disabled engine.
pub fn swap_bench(scale: &Scale) -> Result<()> {
    use taste_framework::{CanaryObservation, RolloutConfig, RolloutController};
    use taste_model::registry::{ModelRegistry, VersionedModel};

    let bundle = build_bundle(DatasetKind::Wiki, scale)?;
    let model = models::taste_model(&bundle, scale, false, "plain")?;
    let split = &bundle.test_fast;
    let ids = split.db.table_ids();
    let base = TasteConfig { l: bundle.kind.default_l(), ..TasteConfig::default() };
    let reps = scale.timing_runs.max(3);

    // 1. Registry artifact lifecycle: CRC-framed publish (temp + fsync +
    // rename) and validated load, per version.
    let dir = std::env::temp_dir().join("taste-repro-swap-registry");
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::new(&dir)?;
    let mut publish_t = Vec::new();
    let mut load_t = Vec::new();
    let mut artifact_bytes = 0u64;
    for v in 1..=reps as u64 {
        let t0 = Instant::now();
        let path = registry.publish(&model, v)?;
        publish_t.push(t0.elapsed());
        artifact_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let t0 = Instant::now();
        let loaded = registry.load(v)?;
        load_t.push(t0.elapsed());
        if loaded.version != v {
            return Err(TasteError::invalid("registry returned the wrong version"));
        }
    }
    let (publish_mean, publish_std) = mean_std(&publish_t);
    let (load_mean, load_std) = mean_std(&load_t);

    // 2. Swap mechanics on the controller: pin cost (per table, on the
    // hot path) and offer → promotion visibility latency.
    let rollout_on = |fraction: f64, min_tables: u64| RolloutConfig {
        enabled: true,
        canary_fraction: fraction,
        min_canary_tables: min_tables,
        ..RolloutConfig::default()
    };
    let rc = RolloutController::new(
        VersionedModel { version: 1, model: Arc::clone(&model) },
        rollout_on(1.0, 1),
    );
    const PINS: u32 = 100_000;
    let t0 = Instant::now();
    for _ in 0..PINS {
        std::hint::black_box(rc.pin());
    }
    let pin_ns = t0.elapsed().as_secs_f64() * 1e9 / f64::from(PINS);
    let mut swap_t = Vec::new();
    for v in 2..=(reps as u64 + 1) {
        let candidate = VersionedModel { version: v, model: Arc::clone(&model) };
        let t0 = Instant::now();
        if !rc.offer(candidate) {
            return Err(TasteError::invalid("controller rejected a fresh candidate"));
        }
        let _ = rc.pin();
        rc.observe_canary(CanaryObservation {
            agree_cols: 4,
            total_cols: 4,
            nonfinite: false,
            candidate_ms: 1.0,
            incumbent_ms: 1.0,
        });
        swap_t.push(t0.elapsed());
        if rc.current_version() != v {
            return Err(TasteError::invalid("promotion did not become visible"));
        }
    }
    let (swap_mean, swap_std) = mean_std(&swap_t);

    // 3. End-to-end canary cost: the engine with a candidate held in
    // canary for the whole run (judgment unreachable) vs rollout off.
    // Candidate weights are identical, so the delta is pure subsystem
    // overhead: pin routing plus the shadow Phase-1 on canary tables.
    let cols: f64 = {
        let probe = run_taste(&model, split, base)?;
        probe.total_columns as f64
    };
    let mut modes = Vec::new();
    for (label, fraction) in [("rollout off", None), ("canary 20%", Some(0.2)), ("canary 100%", Some(1.0))] {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let cfg = match fraction {
                None => base,
                Some(f) => TasteConfig { rollout: rollout_on(f, u64::MAX), ..base },
            };
            let engine = TasteEngine::new(Arc::clone(&model), cfg)?;
            if fraction.is_some() {
                let rc = engine.rollout().expect("rollout enabled");
                if !rc.offer(VersionedModel { version: 2, model: Arc::clone(&model) }) {
                    return Err(TasteError::invalid("canary candidate rejected"));
                }
            }
            let report = engine.detect_batch(&split.db, &ids)?;
            best = best.min(report.wall_time.as_secs_f64());
            if report.tables.iter().any(|t| t.outcome != taste_core::TableOutcome::Completed) {
                return Err(TasteError::invalid("canary run harmed a table"));
            }
        }
        modes.push((label, fraction, best));
    }
    let base_s = modes[0].2;

    let mut rows = vec![
        vec![
            "registry publish".into(),
            format!("{:.2} ± {:.2} ms", publish_mean * 1e3, publish_std * 1e3),
            format!("{artifact_bytes} B artifact"),
        ],
        vec![
            "registry load+validate".into(),
            format!("{:.2} ± {:.2} ms", load_mean * 1e3, load_std * 1e3),
            "CRC frame + finite params".into(),
        ],
        vec![
            "offer → promoted".into(),
            format!("{:.1} ± {:.1} µs", swap_mean * 1e6, swap_std * 1e6),
            "visibility latency".into(),
        ],
        vec!["pin (per table)".into(), format!("{pin_ns:.0} ns"), "serving hot path".into()],
    ];
    for (label, _, wall) in &modes {
        rows.push(vec![
            (*label).into(),
            format!("{:.0} cols/s", cols / wall),
            format!("{:.3}x vs off", base_s / wall),
        ]);
    }
    print_table(
        "Hot model reload: swap latency and canary overhead (SynthWiki test)",
        &["measure", "value", "notes"],
        &rows,
    );

    let mode_json: Vec<serde_json::Value> = modes
        .iter()
        .map(|(label, fraction, wall)| {
            json!({
                "mode": label,
                "canary_fraction": fraction,
                "wall_s": wall,
                "cols_per_s": cols / wall,
                "throughput_vs_off": base_s / wall,
            })
        })
        .collect();
    write_json(
        "BENCH_swap",
        &json!({
            "dataset": DatasetKind::Wiki.label(),
            "tables": ids.len(),
            "columns": cols,
            "timing": format!("min/mean over {reps} passes"),
            "registry": {
                "publish_mean_s": publish_mean,
                "publish_std_s": publish_std,
                "load_mean_s": load_mean,
                "load_std_s": load_std,
                "artifact_bytes": artifact_bytes,
            },
            "swap": {
                "offer_to_promoted_mean_s": swap_mean,
                "offer_to_promoted_std_s": swap_std,
                "pin_ns": pin_ns,
            },
            "serving": mode_json,
        }),
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Runs every experiment in paper order.
pub fn all(scale: &Scale) -> Result<()> {
    table2(scale)?;
    fig4(scale)?;
    table3(scale)?;
    table4(scale)?;
    fig5(scale)?;
    fig6(scale)?;
    fig7(scale)?;
    fig8(scale)?;
    fault_sweep(scale)?;
    overload_sweep(scale)?;
    crash_resume(scale)?;
    train_resume(scale)?;
    infer_bench(scale)?;
    kernel_bench(scale)?;
    batch_bench(scale)?;
    swap_bench(scale)?;
    Ok(())
}
