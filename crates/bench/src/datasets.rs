//! Dataset bundles: corpora, vocabularies, and loaded test databases.

use crate::scale::Scale;
use taste_core::Result;
use taste_data::corpus::{Corpus, CorpusSpec};
use taste_data::load::{load_split, LoadedSplit};
use taste_data::splits::Split;
use taste_db::LatencyProfile;
use taste_core::HistogramKind;
use taste_model::prepare::{self, ModelInput};
use taste_tokenizer::{normalize, Tokenizer, VocabBuilder};

/// Which of the two evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// SynthWiki (WikiTable analog).
    Wiki,
    /// SynthGit (GitTables analog).
    Git,
}

impl DatasetKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Wiki => "SynthWiki",
            DatasetKind::Git => "SynthGit",
        }
    }

    /// The column-split threshold `l` used when training and serving
    /// TASTE on this dataset. The paper uses l=20 on a GPU; at the
    /// reproduction's reduced model scale, attention routing over
    /// 10-14-column SynthGit chunks does not converge in the training
    /// budget, so SynthGit uses smaller chunks (documented in
    /// EXPERIMENTS.md). Baselines are unaffected (TURL is per-column;
    /// Doduo's chunking uses the same value for fairness).
    pub fn default_l(self) -> usize {
        match self {
            DatasetKind::Wiki => 20,
            DatasetKind::Git => 6,
        }
    }

    /// The corpus spec at a given scale.
    pub fn spec(self, scale: &Scale) -> CorpusSpec {
        match self {
            DatasetKind::Wiki => CorpusSpec::synth_wiki(scale.wiki_tables, scale.seed),
            DatasetKind::Git => CorpusSpec::synth_git(scale.git_tables, scale.seed),
        }
    }
}

/// Histogram settings used whenever histograms are materialized.
pub const HISTOGRAM: (HistogramKind, usize) = (HistogramKind::EqualDepth, 8);

/// One dataset with every database the experiments touch.
pub struct Bundle {
    /// Which dataset.
    pub kind: DatasetKind,
    /// The generated corpus (with ground truth).
    pub corpus: Corpus,
    /// Tokenizer built from the training split.
    pub tokenizer: Tokenizer,
    /// Test split with cloud latency, no histograms (timing runs).
    pub test_timed: LoadedSplit,
    /// Test split with zero latency, no histograms (accuracy runs).
    pub test_fast: LoadedSplit,
    /// Test split with cloud latency and histograms.
    pub test_timed_hist: LoadedSplit,
    /// Test split with zero latency and histograms.
    pub test_fast_hist: LoadedSplit,
}

/// Builds the vocabulary from the training split: schema words plus a
/// sample of cell renderings (mirroring pre-training corpus coverage).
pub fn build_tokenizer(corpus: &Corpus) -> Tokenizer {
    let mut b = VocabBuilder::new();
    for table in corpus.split_tables(Split::Train) {
        for w in normalize(&table.meta.textual()) {
            b.add_word(&w);
        }
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                b.add_word(&w);
            }
            b.add_word(col.raw_type.token());
        }
        for row in table.rows.iter().take(8) {
            for cell in row {
                for w in normalize(&cell.render()) {
                    b.add_word(&w);
                }
            }
        }
    }
    Tokenizer::new(b.build(4000, 2))
}

/// Builds a full bundle (corpus + tokenizer + the four test databases).
pub fn build_bundle(kind: DatasetKind, scale: &Scale) -> Result<Bundle> {
    let corpus = Corpus::generate(kind.spec(scale));
    let tokenizer = build_tokenizer(&corpus);
    let test_timed = load_split(&corpus, Split::Test, LatencyProfile::cloud(), None)?;
    let test_fast = load_split(&corpus, Split::Test, LatencyProfile::zero(), None)?;
    let test_timed_hist = load_split(&corpus, Split::Test, LatencyProfile::cloud(), Some(HISTOGRAM))?;
    let test_fast_hist = load_split(&corpus, Split::Test, LatencyProfile::zero(), Some(HISTOGRAM))?;
    Ok(Bundle { kind, corpus, tokenizer, test_timed, test_fast, test_timed_hist, test_fast_hist })
}

/// Builds training inputs for one split: catalog metadata (statistics and
/// optional histograms) comes from an analyzed zero-latency database —
/// matching what the model will see at serving time — while contents and
/// labels come from the corpus tables.
pub fn training_inputs_from_split(
    corpus: &Corpus,
    split: Split,
    with_histograms: bool,
    l: usize,
    m: usize,
    n: usize,
) -> Result<Vec<ModelInput>> {
    let hist = with_histograms.then_some(HISTOGRAM);
    let loaded = load_split(corpus, split, LatencyProfile::zero(), hist)?;
    let conn = loaded.db.connect();
    let tables = corpus.split_tables(split);
    let ntypes = corpus.ntypes();
    let mut inputs = Vec::new();
    for (idx, table) in tables.iter().enumerate() {
        let tid = taste_core::TableId(idx as u32);
        let meta = conn.fetch_table_meta(tid)?;
        let columns = conn.fetch_columns_meta(tid)?;
        let all_contents = prepare::select_cells(&table.rows, table.width(), m, n);
        for chunk in prepare::build_chunks(&meta, &columns, l, with_histograms) {
            let contents = chunk.ordinals.iter().map(|&o| all_contents[o as usize].clone()).collect();
            let labels: Vec<_> = chunk.ordinals.iter().map(|&o| table.labels[o as usize].clone()).collect();
            let targets = labels.iter().map(|ls| ls.to_multi_hot(ntypes)).collect();
            inputs.push(ModelInput { chunk, contents, targets, labels });
        }
    }
    Ok(inputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bundle_builds() {
        let scale = Scale::quick();
        let bundle = build_bundle(DatasetKind::Wiki, &scale).unwrap();
        assert_eq!(bundle.corpus.tables.len(), scale.wiki_tables);
        assert!(bundle.test_fast.db.table_count() > 0);
        assert_eq!(bundle.test_fast.db.table_count(), bundle.test_timed.db.table_count());
        // Vocab knows descriptive schema words.
        assert!(bundle.tokenizer.vocab().id("city").is_some());
    }

    #[test]
    fn training_inputs_have_db_backed_stats() {
        let scale = Scale::quick();
        let corpus = Corpus::generate(DatasetKind::Git.spec(&scale));
        let inputs = training_inputs_from_split(&corpus, Split::Valid, false, 20, 50, 10).unwrap();
        assert!(!inputs.is_empty());
        // NDV presence flag (index 7 of the nonmeta layout) must be set:
        // the stats came from an ANALYZEd database.
        for input in &inputs {
            for f in &input.chunk.nonmeta {
                assert_eq!(f[7], 1.0, "NDV should be present from ANALYZE");
            }
        }
    }

    #[test]
    fn histogram_inputs_populate_hist_block() {
        let scale = Scale::quick();
        let corpus = Corpus::generate(DatasetKind::Wiki.spec(&scale));
        let with = training_inputs_from_split(&corpus, Split::Valid, true, 20, 50, 10).unwrap();
        let without = training_inputs_from_split(&corpus, Split::Valid, false, 20, 50, 10).unwrap();
        let hist_flag_idx = taste_model::features::NONMETA_DIM - taste_model::features::HIST_FEATS - 1;
        let some_with = with.iter().flat_map(|i| i.chunk.nonmeta.iter()).any(|f| f[hist_flag_idx] == 1.0);
        let none_without = without.iter().flat_map(|i| i.chunk.nonmeta.iter()).all(|f| f[hist_flag_idx] == 0.0);
        assert!(some_with && none_without);
    }
}
