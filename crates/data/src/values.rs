//! Seed-deterministic cell value generators for the built-in semantic
//! types.
//!
//! Each generator produces realistic-shaped values for one concept; the
//! registry wires them to type definitions. Generators take an explicit
//! RNG so corpus generation is replayable per table.

use rand::Rng;
use taste_core::Cell;

/// A pool of first names.
pub const FIRST_NAMES: &[&str] = &[
    "james", "mary", "wei", "fatima", "carlos", "yuki", "anna", "omar", "li", "sofia", "ivan",
    "chloe", "raj", "elena", "tao", "lucas", "nina", "amir", "julia", "sam", "maria", "chen",
    "aisha", "david", "laura", "kofi", "emma", "jorge", "priya", "tom",
];

/// A pool of last names.
pub const LAST_NAMES: &[&str] = &[
    "smith", "garcia", "wang", "mueller", "tanaka", "silva", "kim", "ivanov", "nguyen", "brown",
    "rossi", "kumar", "chen", "lopez", "sato", "novak", "ali", "jones", "petrov", "haddad",
    "olsen", "costa", "zhang", "dubois", "okafor", "schmidt", "park", "moreau", "liang", "oconnor",
];

/// A pool of cities.
pub const CITIES: &[&str] = &[
    "shenzhen", "london", "tokyo", "paris", "mumbai", "lagos", "berlin", "seoul", "madrid",
    "cairo", "toronto", "sydney", "beijing", "lima", "oslo", "vienna", "dubai", "chicago",
    "guangzhou", "milan", "prague", "nairobi", "boston", "kyoto", "lyon", "porto", "hanoi",
    "quito", "perth", "denver",
];

/// A pool of countries.
pub const COUNTRIES: &[&str] = &[
    "china", "france", "japan", "brazil", "india", "nigeria", "germany", "korea", "spain",
    "egypt", "canada", "australia", "peru", "norway", "austria", "mexico", "italy", "kenya",
    "vietnam", "ecuador", "poland", "chile", "greece", "sweden", "turkey",
];

/// A pool of company name stems.
pub const COMPANY_STEMS: &[&str] = &[
    "acme", "globex", "initech", "umbrella", "hooli", "stark", "wayne", "cyberdyne", "tyrell",
    "aperture", "vandelay", "wonka", "dunder", "oscorp", "massive", "pied", "soylent", "virtucon",
    "octan", "zorg",
];

/// Company suffixes.
pub const COMPANY_SUFFIX: &[&str] = &["inc", "ltd", "corp", "llc", "group", "holdings", "labs", "tech"];

/// Product category names.
pub const CATEGORIES: &[&str] = &[
    "electronics", "clothing", "furniture", "groceries", "toys", "sports", "books", "beauty",
    "automotive", "garden", "music", "office",
];

/// Brand names.
pub const BRANDS: &[&str] = &[
    "zenith", "apex", "nova", "orion", "vertex", "lumen", "pulse", "atlas", "echo", "prism",
    "quanta", "solace",
];

/// Color names.
pub const COLORS: &[&str] = &[
    "red", "blue", "green", "black", "white", "silver", "gold", "purple", "orange", "teal",
    "maroon", "navy",
];

/// Job titles.
pub const JOB_TITLES: &[&str] = &[
    "engineer", "manager", "analyst", "designer", "director", "accountant", "consultant",
    "developer", "architect", "technician", "scientist", "administrator",
];

/// Music/film genres.
pub const GENRES: &[&str] = &[
    "rock", "jazz", "pop", "classical", "hiphop", "electronic", "folk", "metal", "blues",
    "country", "drama", "comedy", "thriller", "documentary",
];

/// Languages.
pub const LANGUAGES: &[&str] = &[
    "english", "mandarin", "spanish", "hindi", "arabic", "french", "russian", "portuguese",
    "japanese", "german", "korean", "italian",
];

/// Nationalities (adjective form).
pub const NATIONALITIES: &[&str] = &[
    "chinese", "french", "japanese", "brazilian", "indian", "nigerian", "german", "korean",
    "spanish", "egyptian", "canadian", "australian",
];

/// Sports team name stems.
pub const TEAM_STEMS: &[&str] = &[
    "tigers", "eagles", "sharks", "wolves", "dragons", "hawks", "lions", "bears", "falcons",
    "panthers", "ravens", "bulls",
];

/// Sports positions.
pub const POSITIONS: &[&str] = &[
    "goalkeeper", "defender", "midfielder", "forward", "striker", "winger", "center", "guard",
    "pitcher", "catcher",
];

/// Award names.
pub const AWARDS: &[&str] = &[
    "grammy", "oscar", "emmy", "booker prize", "pulitzer", "golden globe", "nobel prize",
    "bafta", "palme dor", "hugo award",
];

/// Album/film/book title word pools.
pub const TITLE_WORDS_A: &[&str] = &[
    "midnight", "golden", "silent", "electric", "crimson", "endless", "broken", "hidden",
    "distant", "burning", "frozen", "velvet",
];

/// Second word pool for titles.
pub const TITLE_WORDS_B: &[&str] = &[
    "river", "dream", "empire", "garden", "horizon", "mirror", "symphony", "journey", "shadow",
    "harvest", "lantern", "voyage",
];

/// Street name stems.
pub const STREETS: &[&str] = &[
    "main", "oak", "maple", "cedar", "elm", "park", "lake", "hill", "river", "sunset", "church",
    "market",
];

/// University/department names.
pub const DEPARTMENTS: &[&str] = &[
    "engineering", "marketing", "finance", "operations", "research", "legal", "sales", "support",
    "logistics", "procurement",
];

/// Industries.
pub const INDUSTRIES: &[&str] = &[
    "software", "retail", "banking", "telecom", "healthcare", "energy", "manufacturing",
    "insurance", "media", "transport",
];

/// Currency ISO codes.
pub const CURRENCY_CODES: &[&str] = &[
    "usd", "eur", "cny", "jpy", "gbp", "inr", "brl", "krw", "cad", "aud", "chf", "sek",
];

/// US-style state / province names.
pub const STATES: &[&str] = &[
    "california", "texas", "ontario", "bavaria", "guangdong", "queensland", "catalonia",
    "hokkaido", "sao paulo", "punjab", "zhejiang", "normandy",
];

/// Weekday names.
pub const WEEKDAYS: &[&str] = &[
    "monday", "tuesday", "wednesday", "thursday", "friday", "saturday", "sunday",
];

/// Month names.
pub const MONTHS: &[&str] = &[
    "january", "february", "march", "april", "may", "june", "july", "august", "september",
    "october", "november", "december",
];

/// Top-level domains for URLs/emails.
pub const TLDS: &[&str] = &["com", "org", "net", "io", "cn", "de", "jp", "co"];

/// Free-text note fragments.
pub const NOTE_WORDS: &[&str] = &[
    "pending", "review", "approved", "urgent", "follow", "up", "customer", "requested",
    "shipped", "delayed", "verified", "duplicate", "escalated", "resolved",
];

/// Picks one item from a pool.
pub fn pick<'a>(rng: &mut impl Rng, pool: &'a [&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Digit string of exactly `len` digits (first digit non-zero).
pub fn digits(rng: &mut impl Rng, len: usize) -> String {
    let mut s = String::with_capacity(len);
    for i in 0..len {
        let d = if i == 0 { rng.gen_range(1..=9) } else { rng.gen_range(0..=9) };
        s.push(char::from(b'0' + d));
    }
    s
}

/// A phone number: 11-digit mobile-style string.
pub fn phone_number(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!("1{}", digits(rng, 10)))
}

/// A credit card number: 16 digits with a Luhn-valid check digit.
pub fn credit_card(rng: &mut impl Rng) -> Cell {
    let mut num: Vec<u8> = Vec::with_capacity(16);
    num.push(4); // Visa-style prefix
    for _ in 0..14 {
        num.push(rng.gen_range(0..=9));
    }
    // Luhn check digit over the 15 digits.
    let mut sum = 0u32;
    for (i, &d) in num.iter().rev().enumerate() {
        let mut v = u32::from(d);
        if i % 2 == 0 {
            v *= 2;
            if v > 9 {
                v -= 9;
            }
        }
        sum += v;
    }
    num.push((10 - (sum % 10) as u8) % 10);
    Cell::Text(num.iter().map(|d| char::from(b'0' + d)).collect())
}

/// A US-style social security number `AAA-GG-SSSS`.
pub fn ssn(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!("{}-{}-{}", digits(rng, 3), digits(rng, 2), digits(rng, 4)))
}

/// An email address built from the name pools.
pub fn email(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!(
        "{}.{}@{}.{}",
        pick(rng, FIRST_NAMES),
        pick(rng, LAST_NAMES),
        pick(rng, COMPANY_STEMS),
        pick(rng, TLDS)
    ))
}

/// A URL.
pub fn url(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!(
        "https://www.{}.{}/{}",
        pick(rng, COMPANY_STEMS),
        pick(rng, TLDS),
        pick(rng, CATEGORIES)
    ))
}

/// An IPv4 address.
pub fn ip_address(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!(
        "{}.{}.{}.{}",
        rng.gen_range(1..=254),
        rng.gen_range(0..=255),
        rng.gen_range(0..=255),
        rng.gen_range(1..=254)
    ))
}

/// A UUID-shaped hex string.
pub fn uuid(rng: &mut impl Rng) -> Cell {
    let hex = |rng: &mut dyn rand::RngCore, n: usize| -> String {
        (0..n).map(|_| char::from_digit(rng.gen_range(0..16), 16).unwrap()).collect()
    };
    Cell::Text(format!(
        "{}-{}-{}-{}-{}",
        hex(rng, 8),
        hex(rng, 4),
        hex(rng, 4),
        hex(rng, 4),
        hex(rng, 12)
    ))
}

/// An ISBN-13 string with hyphens.
pub fn isbn(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!("978-{}-{}-{}-{}", digits(rng, 1), digits(rng, 3), digits(rng, 5), digits(rng, 1)))
}

/// A DOI string.
pub fn doi(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!("10.{}/{}.{}", digits(rng, 4), pick(rng, COMPANY_STEMS), digits(rng, 6)))
}

/// A `YYYY-MM-DD` date.
pub fn date(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!(
        "{}-{:02}-{:02}",
        rng.gen_range(1950..=2025),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28)
    ))
}

/// A `YYYY-MM-DD hh:mm:ss` timestamp.
pub fn timestamp(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!(
        "{}-{:02}-{:02} {:02}:{:02}:{:02}",
        rng.gen_range(2000..=2025),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28),
        rng.gen_range(0..24),
        rng.gen_range(0..60),
        rng.gen_range(0..60)
    ))
}

/// A zip / postal code (5 digits).
pub fn zip_code(rng: &mut impl Rng) -> Cell {
    Cell::Text(digits(rng, 5))
}

/// A street address line.
pub fn street_address(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!("{} {} street", rng.gen_range(1..=9999), pick(rng, STREETS)))
}

/// An IBAN-shaped account string.
pub fn iban(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!("de{}", digits(rng, 20)))
}

/// A SKU code like `ZX-10482`.
pub fn sku(rng: &mut impl Rng) -> Cell {
    let a = char::from(b'a' + rng.gen_range(0..26u8));
    let b = char::from(b'a' + rng.gen_range(0..26u8));
    Cell::Text(format!("{a}{b}-{}", digits(rng, 5)))
}

/// A two-word synthetic title (album / film / book).
pub fn title(rng: &mut impl Rng) -> Cell {
    Cell::Text(format!("{} {}", pick(rng, TITLE_WORDS_A), pick(rng, TITLE_WORDS_B)))
}

/// A short free-text note.
pub fn note(rng: &mut impl Rng) -> Cell {
    let n = rng.gen_range(2..=5);
    let words: Vec<&str> = (0..n).map(|_| pick(rng, NOTE_WORDS)).collect();
    Cell::Text(words.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn text(c: Cell) -> String {
        match c {
            Cell::Text(s) => s,
            other => panic!("expected text, got {other:?}"),
        }
    }

    #[test]
    fn credit_cards_are_luhn_valid_16_digits() {
        let mut r = rng();
        for _ in 0..50 {
            let s = text(credit_card(&mut r));
            assert_eq!(s.len(), 16);
            assert!(s.bytes().all(|b| b.is_ascii_digit()));
            let mut sum = 0u32;
            for (i, b) in s.bytes().rev().enumerate() {
                let mut v = u32::from(b - b'0');
                if i % 2 == 1 {
                    v *= 2;
                    if v > 9 {
                        v -= 9;
                    }
                }
                sum += v;
            }
            assert_eq!(sum % 10, 0, "Luhn failure for {s}");
        }
    }

    #[test]
    fn phone_numbers_are_11_digits_starting_with_1() {
        let mut r = rng();
        let s = text(phone_number(&mut r));
        assert_eq!(s.len(), 11);
        assert!(s.starts_with('1'));
        assert!(s.bytes().all(|b| b.is_ascii_digit()));
    }

    #[test]
    fn ssn_matches_pattern() {
        let mut r = rng();
        let s = text(ssn(&mut r));
        let parts: Vec<&str> = s.split('-').collect();
        assert_eq!(parts.len(), 3);
        assert_eq!((parts[0].len(), parts[1].len(), parts[2].len()), (3, 2, 4));
    }

    #[test]
    fn email_and_url_have_expected_shape() {
        let mut r = rng();
        let e = text(email(&mut r));
        assert!(e.contains('@') && e.contains('.'));
        let u = text(url(&mut r));
        assert!(u.starts_with("https://www."));
    }

    #[test]
    fn ip_octets_in_range() {
        let mut r = rng();
        for _ in 0..20 {
            let s = text(ip_address(&mut r));
            let octets: Vec<u32> = s.split('.').map(|p| p.parse().unwrap()).collect();
            assert_eq!(octets.len(), 4);
            assert!(octets.iter().all(|&o| o <= 255));
        }
    }

    #[test]
    fn uuid_shape() {
        let mut r = rng();
        let s = text(uuid(&mut r));
        let lens: Vec<usize> = s.split('-').map(str::len).collect();
        assert_eq!(lens, vec![8, 4, 4, 4, 12]);
    }

    #[test]
    fn dates_and_timestamps_parse_fields() {
        let mut r = rng();
        let d = text(date(&mut r));
        assert_eq!(d.len(), 10);
        let ts = text(timestamp(&mut r));
        assert_eq!(ts.len(), 19);
        assert!(ts.contains(' '));
    }

    #[test]
    fn isbn_starts_with_978() {
        let mut r = rng();
        assert!(text(isbn(&mut r)).starts_with("978-"));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..10 {
            assert_eq!(email(&mut a), email(&mut b));
        }
    }

    #[test]
    fn digits_respects_length_and_leading_nonzero() {
        let mut r = rng();
        for len in 1..20 {
            let s = digits(&mut r, len);
            assert_eq!(s.len(), len);
            assert_ne!(s.as_bytes()[0], b'0');
        }
    }

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [FIRST_NAMES, CITIES, COUNTRIES, CURRENCY_CODES, GENRES, AWARDS] {
            assert!(!pool.is_empty());
            assert!(pool.iter().all(|w| w.chars().all(|c| !c.is_ascii_uppercase())));
        }
    }
}
