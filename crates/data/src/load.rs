//! Loading a corpus split into a simulated user database.
//!
//! Ground-truth labels never enter the database — a real user database
//! has none. They stay in the [`LoadedSplit::truth`] index, keyed by the
//! database-assigned [`taste_core::TableId`], for evaluation only.

use crate::corpus::Corpus;
use crate::splits::Split;
use std::sync::Arc;
use taste_core::{HistogramKind, LabelSet, Result};
use taste_db::{Database, LatencyProfile};

/// A corpus split materialized in a database, plus its ground truth.
pub struct LoadedSplit {
    /// The simulated user database holding the split's tables.
    pub db: Arc<Database>,
    /// `truth[table_id.0 as usize][ordinal]` is the column's label set.
    pub truth: Vec<Vec<LabelSet>>,
    /// Number of semantic types in the domain (classifier width).
    pub ntypes: usize,
}

impl LoadedSplit {
    /// Total number of columns in the split.
    pub fn total_columns(&self) -> usize {
        self.truth.iter().map(Vec::len).sum()
    }
}

/// Loads one split of the corpus into a fresh database with the given
/// latency profile. When `histogram` is set, `ANALYZE TABLE ... UPDATE
/// HISTOGRAM` runs on every table first (the *with histogram* variant's
/// precondition); otherwise plain `ANALYZE` still runs so basic catalog
/// statistics (NDV, null fraction, min/max) exist, as managed MySQL
/// maintains them automatically.
pub fn load_split(
    corpus: &Corpus,
    split: Split,
    latency: LatencyProfile,
    histogram: Option<(HistogramKind, usize)>,
) -> Result<LoadedSplit> {
    let db = Database::new(format!("{}-{}", corpus.spec.name, split.label()), latency);
    let mut truth = Vec::new();
    for table in corpus.split_tables(split) {
        let tid = db.create_table(table)?;
        debug_assert_eq!(tid.0 as usize, truth.len());
        truth.push(table.labels.clone());
    }
    db.analyze_all(histogram)?;
    Ok(LoadedSplit { db, truth, ntypes: corpus.ntypes() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;
    use taste_core::TableId;

    fn corpus() -> Corpus {
        Corpus::generate(CorpusSpec::synth_wiki(60, 0))
    }

    #[test]
    fn load_preserves_counts_and_truth_alignment() {
        let c = corpus();
        let split_tables = c.split_tables(Split::Test);
        let loaded = load_split(&c, Split::Test, LatencyProfile::zero(), None).unwrap();
        assert_eq!(loaded.db.table_count(), split_tables.len());
        assert_eq!(loaded.truth.len(), split_tables.len());
        assert_eq!(loaded.total_columns() as u64, loaded.db.total_columns());
        assert_eq!(loaded.ntypes, c.ntypes());
        // Truth rows align with the loaded tables' widths.
        for (i, t) in split_tables.iter().enumerate() {
            assert_eq!(loaded.truth[i].len(), t.width());
            assert_eq!(loaded.truth[i], t.labels);
        }
    }

    #[test]
    fn analyze_runs_by_default() {
        let c = corpus();
        let loaded = load_split(&c, Split::Valid, LatencyProfile::zero(), None).unwrap();
        let cols = loaded.db.columns_view(TableId(0)).unwrap();
        assert!(cols.iter().all(|c| c.ndv.is_some()));
        assert!(cols.iter().all(|c| !c.has_histogram));
    }

    #[test]
    fn histogram_option_builds_histograms() {
        let c = corpus();
        let loaded = load_split(
            &c,
            Split::Valid,
            LatencyProfile::zero(),
            Some((HistogramKind::EqualDepth, 8)),
        )
        .unwrap();
        let cols = loaded.db.columns_view(TableId(0)).unwrap();
        assert!(cols.iter().all(|c| c.has_histogram));
    }

    #[test]
    fn ledger_starts_clean_after_load() {
        let c = corpus();
        let loaded = load_split(&c, Split::Test, LatencyProfile::zero(), None).unwrap();
        // Loading and ANALYZE are administrative: no intrusiveness charge.
        assert_eq!(loaded.db.ledger().snapshot().columns_scanned, 0);
        assert_eq!(loaded.db.ledger().snapshot().connections_opened, 0);
    }
}
