//! # taste-data
//!
//! Synthetic table corpora standing in for the paper's WikiTable and
//! GitTables datasets (the substitution is documented in `DESIGN.md`):
//!
//! * [`values`] — per-concept cell value generators (names, cities,
//!   card numbers, URLs, ISBNs, ...), all seed-deterministic.
//! * [`registry`] — the built-in semantic type catalog: ~60 types across
//!   9 domains, each with descriptive and *ambiguous* column-name pools,
//!   comment templates, and confusion groups (types that share ambiguous
//!   names like `num`, exactly the paper's motivating example of a column
//!   "num" that could be a phone number or a credit card number).
//! * [`corpus`] — table generation under a [`corpus::CorpusSpec`]
//!   (column/row ranges, metadata quality, fraction of unlabeled
//!   columns), with the `SynthWiki` and `SynthGit` presets calibrated to
//!   the two open datasets' contrasting properties.
//! * [`splits`] — deterministic train/validation/test assignment and the
//!   dataset summary of Table 2.
//! * [`retained`] — the WikiTable-`S_k` retained-type-set reduction used
//!   by the §6.6 experiment (columns whose labels are all removed become
//!   background).
//! * [`load`] — loading a corpus split into a [`taste_db::Database`]
//!   together with the ground-truth label index kept *outside* the
//!   database.

#![warn(missing_docs)]

pub mod corpus;
pub mod load;
pub mod registry;
pub mod retained;
pub mod splits;
pub mod values;

pub use corpus::{Corpus, CorpusSpec, MetadataQuality};
pub use load::LoadedSplit;
pub use registry::BuiltinRegistry;
pub use splits::{DatasetSummary, Split};
