//! Synthetic corpus generation.
//!
//! A [`CorpusSpec`] controls the two properties that distinguish the
//! paper's datasets (§6.1.1): the fraction of columns without any
//! semantic type, and the *metadata quality* — how often tenants pick
//! descriptive column names and write comments. The `SynthWiki` preset
//! models WikiTable (all columns labeled, mediocre metadata quality →
//! ~45% of columns need content in P2) and `SynthGit` models
//! GitTables-100K (~32% unlabeled columns, disciplined snake_case naming
//! → ~2% of columns need content).

use crate::registry::{BuiltinRegistry, BACKGROUND_NAMES};
use crate::values;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use taste_core::rng::rng_for_indexed;
use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta, TypeId};

/// How carefully the synthetic tenant maintains schema metadata.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetadataQuality {
    /// Probability a labeled column gets a descriptive name (vs an
    /// ambiguous one shared across its confusion group).
    pub descriptive_name_prob: f64,
    /// Probability a descriptively-named column also gets a comment.
    /// Ambiguously-named columns get comments at 20% of this rate (lazy
    /// namers are lazy commenters).
    pub comment_prob: f64,
    /// Probability the table itself gets a comment.
    pub table_comment_prob: f64,
}

/// Full generation recipe for one synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Corpus name (used in reports and seed derivation).
    pub name: String,
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Number of tables to generate.
    pub n_tables: usize,
    /// Minimum columns per table.
    pub cols_min: usize,
    /// Maximum columns per table (inclusive).
    pub cols_max: usize,
    /// Minimum rows per table.
    pub rows_min: usize,
    /// Maximum rows per table (inclusive).
    pub rows_max: usize,
    /// Fraction of columns carrying no semantic type (background).
    pub unlabeled_col_frac: f64,
    /// Probability an individual cell is NULL (nullable columns only).
    pub null_cell_prob: f64,
    /// Metadata quality knobs.
    pub quality: MetadataQuality,
}

impl CorpusSpec {
    /// WikiTable-flavored preset: small, fully labeled tables extracted
    /// from web pages, with frequently ambiguous header text.
    pub fn synth_wiki(n_tables: usize, seed: u64) -> CorpusSpec {
        CorpusSpec {
            name: "SynthWiki".into(),
            seed,
            n_tables,
            cols_min: 2,
            cols_max: 5,
            rows_min: 30,
            rows_max: 60,
            unlabeled_col_frac: 0.0,
            null_cell_prob: 0.03,
            quality: MetadataQuality {
                descriptive_name_prob: 0.50,
                comment_prob: 0.25,
                table_comment_prob: 0.5,
            },
        }
    }

    /// GitTables-flavored preset: wider enterprise-style CSV tables, a
    /// third of columns without any semantic type, disciplined naming.
    pub fn synth_git(n_tables: usize, seed: u64) -> CorpusSpec {
        CorpusSpec {
            name: "SynthGit".into(),
            seed,
            n_tables,
            cols_min: 6,
            cols_max: 14,
            rows_min: 40,
            rows_max: 80,
            unlabeled_col_frac: 0.3156,
            null_cell_prob: 0.05,
            quality: MetadataQuality {
                descriptive_name_prob: 0.97,
                comment_prob: 0.5,
                table_comment_prob: 0.7,
            },
        }
    }
}

/// A generated corpus: the spec, the type catalog, and the tables (with
/// ground-truth labels attached to each [`Table`]).
pub struct Corpus {
    /// The recipe that produced this corpus.
    pub spec: CorpusSpec,
    /// The semantic type catalog in effect.
    pub builtin: BuiltinRegistry,
    /// Generated tables; `tables[i].meta.id == TableId(i)`.
    pub tables: Vec<Table>,
}

const TABLE_NOUNS: &[&str] = &[
    "records", "log", "listing", "archive", "register", "snapshot", "export", "report", "index",
];

impl Corpus {
    /// Generates the corpus deterministically from its spec.
    pub fn generate(spec: CorpusSpec) -> Corpus {
        let builtin = BuiltinRegistry::full();
        let standalone = builtin.standalone_ids();
        let mut tables = Vec::with_capacity(spec.n_tables);
        for i in 0..spec.n_tables {
            let mut rng = rng_for_indexed(spec.seed, &format!("{}.table", spec.name), i as u64);
            tables.push(generate_table(&spec, &builtin, &standalone, i, &mut rng));
        }
        Corpus { spec, builtin, tables }
    }

    /// Domain-set size including the background type (classifier width).
    pub fn ntypes(&self) -> usize {
        self.builtin.registry().len()
    }

    /// Total number of columns across all tables.
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(Table::width).sum()
    }

    /// Fraction of columns with no semantic type.
    pub fn unlabeled_fraction(&self) -> f64 {
        let total = self.total_columns();
        if total == 0 {
            return 0.0;
        }
        let unlabeled: usize = self
            .tables
            .iter()
            .flat_map(|t| t.labels.iter())
            .filter(|l| l.is_empty())
            .count();
        unlabeled as f64 / total as f64
    }
}

fn generate_table(
    spec: &CorpusSpec,
    builtin: &BuiltinRegistry,
    standalone: &[TypeId],
    index: usize,
    rng: &mut StdRng,
) -> Table {
    let ncols = rng.gen_range(spec.cols_min..=spec.cols_max);
    let nrows = rng.gen_range(spec.rows_min..=spec.rows_max);
    let tid = TableId(index as u32);

    // Choose distinct types for the labeled columns.
    let mut type_pool: Vec<TypeId> = standalone.to_vec();
    type_pool.shuffle(rng);

    let mut columns = Vec::with_capacity(ncols);
    let mut labels = Vec::with_capacity(ncols);
    let mut generators: Vec<ColumnPlan> = Vec::with_capacity(ncols);

    for ordinal in 0..ncols {
        let labeled = !rng.gen_bool(spec.unlabeled_col_frac);
        if labeled {
            let ty = type_pool.pop().unwrap_or_else(|| standalone[rng.gen_range(0..standalone.len())]);
            let def = builtin.def(ty);
            let descriptive = rng.gen_bool(spec.quality.descriptive_name_prob);
            let name = builtin.sample_column_name(ty, descriptive, rng);
            let comment_p = if descriptive {
                spec.quality.comment_prob
            } else {
                spec.quality.comment_prob * 0.2
            };
            let comment = rng.gen_bool(comment_p).then(|| builtin.sample_comment(ty, rng));
            let nullable = rng.gen_bool(0.4);
            columns.push(ColumnMeta {
                id: ColumnId::new(tid, ordinal as u16),
                name,
                comment,
                raw_type: def.raw_type,
                nullable,
                stats: Default::default(),
                histogram: None,
            });
            let mut label = LabelSet::from_iter([ty]);
            if let Some(co) = builtin.roll_co_label(ty, rng) {
                label.insert(co);
            }
            labels.push(label);
            generators.push(ColumnPlan::Typed { ty, nullable });
        } else {
            let (name, raw_type, kind) = background_column(rng);
            columns.push(ColumnMeta {
                id: ColumnId::new(tid, ordinal as u16),
                name,
                comment: None,
                raw_type,
                nullable: true,
                stats: Default::default(),
                histogram: None,
            });
            labels.push(LabelSet::empty());
            generators.push(ColumnPlan::Background { kind });
        }
    }

    // Table name themed after the first labeled column's domain.
    let theme = generators
        .iter()
        .find_map(|g| match g {
            ColumnPlan::Typed { ty, .. } => Some(builtin.def(*ty).domain),
            ColumnPlan::Background { .. } => None,
        })
        .unwrap_or("misc");
    let noun = values::pick(rng, TABLE_NOUNS);
    let table_name = format!("{theme}_{noun}_{index}");
    let table_comment = rng.gen_bool(spec.quality.table_comment_prob).then(|| {
        let concepts: Vec<&str> = generators
            .iter()
            .filter_map(|g| match g {
                ColumnPlan::Typed { ty, .. } => Some(builtin.def(*ty).concept),
                ColumnPlan::Background { .. } => None,
            })
            .take(3)
            .collect();
        if concepts.is_empty() {
            format!("{theme} data {noun}")
        } else {
            format!("{theme} {noun} with {}", concepts.join(" "))
        }
    });

    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for plan in &generators {
            let cell = match plan {
                ColumnPlan::Typed { ty, nullable } => {
                    if *nullable && rng.gen_bool(spec.null_cell_prob) {
                        Cell::Null
                    } else {
                        builtin.sample_value(*ty, rng)
                    }
                }
                ColumnPlan::Background { kind } => kind.sample(rng),
            };
            row.push(cell);
        }
        rows.push(row);
    }

    Table {
        meta: TableMeta { id: tid, name: table_name, comment: table_comment, row_count: nrows as u64 },
        columns,
        rows,
        labels,
    }
}

enum ColumnPlan {
    Typed { ty: TypeId, nullable: bool },
    Background { kind: NoiseKind },
}

/// Content families for unlabeled columns: shapes no semantic type in the
/// catalog produces, so "no type" is learnable rather than arbitrary.
#[derive(Debug, Clone, Copy)]
enum NoiseKind {
    OpaqueInt,
    OpaqueFloat,
    HexBlob,
    TokenSoup,
}

impl NoiseKind {
    fn sample(self, rng: &mut StdRng) -> Cell {
        match self {
            NoiseKind::OpaqueInt => Cell::Int(rng.gen_range(-1_000_000_000..1_000_000_000)),
            NoiseKind::OpaqueFloat => Cell::Float(rng.gen_range(-1e6..1e6)),
            NoiseKind::HexBlob => {
                let n = rng.gen_range(6..=12);
                Cell::Text((0..n).map(|_| char::from_digit(rng.gen_range(0..16), 16).unwrap()).collect())
            }
            NoiseKind::TokenSoup => {
                let n = rng.gen_range(1..=3);
                let words: Vec<String> = (0..n)
                    .map(|_| {
                        let len = rng.gen_range(3..=8);
                        (0..len).map(|_| char::from(b'a' + rng.gen_range(0..26u8))).collect()
                    })
                    .collect();
                Cell::Text(words.join("_"))
            }
        }
    }
}

fn background_column(rng: &mut StdRng) -> (String, RawType, NoiseKind) {
    let kind = match rng.gen_range(0..4) {
        0 => NoiseKind::OpaqueInt,
        1 => NoiseKind::OpaqueFloat,
        2 => NoiseKind::HexBlob,
        _ => NoiseKind::TokenSoup,
    };
    let raw = match kind {
        NoiseKind::OpaqueInt => RawType::Integer,
        NoiseKind::OpaqueFloat => RawType::Float,
        NoiseKind::HexBlob | NoiseKind::TokenSoup => RawType::Text,
    };
    let base = values::pick(rng, BACKGROUND_NAMES);
    let name = if rng.gen_bool(0.4) {
        format!("{base}{}", rng.gen_range(1..=99))
    } else {
        base.to_string()
    };
    (name, raw, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusSpec::synth_wiki(20, 0));
        let b = Corpus::generate(CorpusSpec::synth_wiki(20, 0));
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.meta.name, tb.meta.name);
            assert_eq!(ta.rows, tb.rows);
            assert_eq!(ta.labels, tb.labels);
        }
        let c = Corpus::generate(CorpusSpec::synth_wiki(20, 1));
        assert_ne!(a.tables[0].rows, c.tables[0].rows);
    }

    #[test]
    fn tables_validate_and_respect_spec_ranges() {
        let spec = CorpusSpec::synth_git(30, 7);
        let corpus = Corpus::generate(spec.clone());
        assert_eq!(corpus.tables.len(), 30);
        for (i, t) in corpus.tables.iter().enumerate() {
            t.validate().unwrap();
            assert_eq!(t.meta.id, TableId(i as u32));
            assert!(t.width() >= spec.cols_min && t.width() <= spec.cols_max);
            assert!(t.height() >= spec.rows_min && t.height() <= spec.rows_max);
        }
    }

    #[test]
    fn synth_wiki_has_no_unlabeled_columns() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(50, 0));
        assert_eq!(corpus.unlabeled_fraction(), 0.0);
    }

    #[test]
    fn synth_git_unlabeled_fraction_near_target() {
        let corpus = Corpus::generate(CorpusSpec::synth_git(200, 0));
        let frac = corpus.unlabeled_fraction();
        assert!((frac - 0.3156).abs() < 0.04, "unlabeled fraction {frac}");
    }

    #[test]
    fn labeled_columns_have_matching_raw_types() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(30, 2));
        for t in &corpus.tables {
            for (col, label) in t.columns.iter().zip(&t.labels) {
                if let Some(ty) = label.iter().next() {
                    // First label is the primary type (co-labels have
                    // smaller or larger ids, so check membership instead).
                    let matches_any = label
                        .iter()
                        .any(|l| corpus.builtin.def(l).raw_type == col.raw_type);
                    assert!(matches_any, "column {} raw type mismatch for {ty:?}", col.name);
                }
            }
        }
    }

    #[test]
    fn co_labels_occur_in_the_corpus() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(300, 0));
        let multi = corpus
            .tables
            .iter()
            .flat_map(|t| t.labels.iter())
            .filter(|l| l.len() >= 2)
            .count();
        assert!(multi > 0, "expected some multi-label columns");
    }

    #[test]
    fn git_preset_uses_mostly_descriptive_names() {
        let corpus = Corpus::generate(CorpusSpec::synth_git(100, 0));
        let mut descriptive = 0usize;
        let mut labeled = 0usize;
        for t in &corpus.tables {
            for (col, label) in t.columns.iter().zip(&t.labels) {
                if let Some(ty) = label.iter().next() {
                    labeled += 1;
                    if corpus.builtin.def(ty).names.contains(&col.name.as_str()) {
                        descriptive += 1;
                    }
                }
            }
        }
        let frac = descriptive as f64 / labeled as f64;
        assert!(frac > 0.9, "descriptive naming rate {frac}");
    }

    #[test]
    fn table_names_are_unique_and_themed() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(50, 0));
        let mut names = std::collections::HashSet::new();
        for t in &corpus.tables {
            assert!(names.insert(t.meta.name.clone()), "duplicate {}", t.meta.name);
            assert!(t.meta.name.contains('_'));
        }
    }

    #[test]
    fn null_cells_only_in_nullable_columns() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(30, 5));
        for t in &corpus.tables {
            for row in &t.rows {
                for (cell, col) in row.iter().zip(&t.columns) {
                    if matches!(cell, Cell::Null) {
                        assert!(col.nullable, "NULL in non-nullable column {}", col.name);
                    }
                }
            }
        }
    }
}
