//! The WikiTable-`S_k` retained-type-set reduction (§6.6, Fig. 6).
//!
//! The paper mimics real-world cloud workloads — where most columns carry
//! no type of interest — by randomly selecting `k` semantic types to
//! *retain* and stripping every other label; a column left with no labels
//! becomes background (`type: null`). Sweeping `k` sweeps the ratio `η`
//! of columns without any type.

use crate::corpus::Corpus;
use rand::seq::SliceRandom;
use taste_core::rng::rng_for;
use taste_core::TypeId;

/// Randomly selects a retained type set of `k` real types (seeded), and
/// returns the keep-mask indexed by type id.
pub fn retained_mask(corpus: &Corpus, k: usize, seed: u64) -> Vec<bool> {
    let ntypes = corpus.ntypes();
    let mut real_ids: Vec<u32> = (1..ntypes as u32).collect();
    let mut rng = rng_for(seed, "retained-type-set");
    real_ids.shuffle(&mut rng);
    real_ids.truncate(k);
    let mut keep = vec![false; ntypes];
    for id in real_ids {
        keep[id as usize] = true;
    }
    keep
}

impl Corpus {
    /// Produces the tuned corpus `<name>-S_k`: identical tables, with
    /// labels outside the retained set removed. Returns the new corpus
    /// and the retained-set mask.
    pub fn retain_types(&self, k: usize, seed: u64) -> (Corpus, Vec<bool>) {
        let keep = retained_mask(self, k, seed);
        let mut spec = self.spec.clone();
        spec.name = format!("{}-S{k}", spec.name);
        let tables = self
            .tables
            .iter()
            .map(|t| {
                let mut t = t.clone();
                for label in &mut t.labels {
                    label.retain_in(&keep);
                }
                t
            })
            .collect();
        (
            Corpus { spec, builtin: crate::registry::BuiltinRegistry::full(), tables },
            keep,
        )
    }
}

/// Convenience: the retained set as type ids.
pub fn mask_to_ids(mask: &[bool]) -> Vec<TypeId> {
    mask.iter()
        .enumerate()
        .filter(|(_, &k)| k)
        .map(|(i, _)| TypeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;

    #[test]
    fn mask_has_exactly_k_types() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(10, 0));
        for k in [5, 20, 50] {
            let mask = retained_mask(&corpus, k, 0);
            assert_eq!(mask.iter().filter(|&&b| b).count(), k);
            assert!(!mask[0], "background never in the retained set");
        }
    }

    #[test]
    fn mask_is_seed_deterministic() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(10, 0));
        assert_eq!(retained_mask(&corpus, 10, 7), retained_mask(&corpus, 10, 7));
        assert_ne!(retained_mask(&corpus, 10, 7), retained_mask(&corpus, 10, 8));
    }

    #[test]
    fn retention_strips_labels_and_grows_unlabeled_fraction() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(100, 0));
        assert_eq!(corpus.unlabeled_fraction(), 0.0);
        let (small, mask) = corpus.retain_types(10, 0);
        assert!(small.unlabeled_fraction() > 0.5, "eta {}", small.unlabeled_fraction());
        // Remaining labels are all in the retained set.
        for t in &small.tables {
            for l in &t.labels {
                for ty in l.iter() {
                    assert!(mask[ty.index()]);
                }
            }
        }
        // Content untouched.
        assert_eq!(small.tables[0].rows, corpus.tables[0].rows);
        assert!(small.spec.name.ends_with("-S10"));
    }

    #[test]
    fn larger_k_retains_more_labels() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(150, 0));
        let (c10, _) = corpus.retain_types(10, 0);
        let (c50, _) = corpus.retain_types(50, 0);
        assert!(c50.unlabeled_fraction() < c10.unlabeled_fraction());
    }

    #[test]
    fn mask_to_ids_roundtrip() {
        let mask = vec![false, true, false, true];
        let ids = mask_to_ids(&mask);
        assert_eq!(ids, vec![TypeId(1), TypeId(3)]);
    }
}
