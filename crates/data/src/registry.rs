//! The built-in semantic type catalog.
//!
//! Every type carries: a value generator, the raw storage type of its
//! columns, a pool of *descriptive* column names (from which a tenant
//! with good schema hygiene would pick), a pool of comment templates, and
//! membership in a *confusion group* — a set of types whose columns, when
//! named carelessly, share the same ambiguous names (`num`, `value`,
//! `name`, ...). Confusion groups are what make Phase 2 necessary: a
//! metadata-only model cannot distinguish a column named `num` holding
//! phone numbers from one holding credit card numbers — the paper's own
//! motivating example (§1).

use crate::values;
use rand::rngs::StdRng;
use rand::Rng;
use taste_core::{Cell, RawType, TypeId, TypeRegistry};

/// Generator function for one type's cell values.
pub type ValueGen = fn(&mut StdRng) -> Cell;

/// Static definition of one built-in semantic type.
pub struct TypeDef {
    /// Domain part of the dotted name.
    pub domain: &'static str,
    /// Concept part of the dotted name.
    pub concept: &'static str,
    /// Raw storage type of columns of this semantic type.
    pub raw_type: RawType,
    /// Descriptive column-name pool.
    pub names: &'static [&'static str],
    /// Comment templates (chosen when a comment is generated).
    pub comments: &'static [&'static str],
    /// Confusion group key, when the type can be ambiguously named.
    pub confusion: Option<&'static str>,
    /// Dotted name of a broader type that co-occurs as a second label,
    /// with its probability (multi-label generation).
    pub co_label: Option<(&'static str, f64)>,
    /// Whether the type may appear as a standalone column label (broader
    /// co-label-only types never do).
    pub standalone: bool,
    /// Value generator.
    pub gen: ValueGen,
}

macro_rules! pool_gen {
    ($name:ident, $pool:expr) => {
        fn $name(rng: &mut StdRng) -> Cell {
            Cell::Text(values::pick(rng, $pool).to_string())
        }
    };
}

pool_gen!(gen_first_name, values::FIRST_NAMES);
pool_gen!(gen_last_name, values::LAST_NAMES);
pool_gen!(gen_city, values::CITIES);
pool_gen!(gen_country, values::COUNTRIES);
pool_gen!(gen_state, values::STATES);
pool_gen!(gen_category, values::CATEGORIES);
pool_gen!(gen_brand, values::BRANDS);
pool_gen!(gen_color, values::COLORS);
pool_gen!(gen_job_title, values::JOB_TITLES);
pool_gen!(gen_genre, values::GENRES);
pool_gen!(gen_language, values::LANGUAGES);
pool_gen!(gen_nationality, values::NATIONALITIES);
pool_gen!(gen_position, values::POSITIONS);
pool_gen!(gen_award, values::AWARDS);
pool_gen!(gen_department, values::DEPARTMENTS);
pool_gen!(gen_industry, values::INDUSTRIES);
pool_gen!(gen_currency, values::CURRENCY_CODES);
pool_gen!(gen_weekday, values::WEEKDAYS);
pool_gen!(gen_month, values::MONTHS);

fn gen_full_name(rng: &mut StdRng) -> Cell {
    Cell::Text(format!(
        "{} {}",
        values::pick(rng, values::FIRST_NAMES),
        values::pick(rng, values::LAST_NAMES)
    ))
}

fn gen_company(rng: &mut StdRng) -> Cell {
    Cell::Text(format!(
        "{} {}",
        values::pick(rng, values::COMPANY_STEMS),
        values::pick(rng, values::COMPANY_SUFFIX)
    ))
}

fn gen_team(rng: &mut StdRng) -> Cell {
    Cell::Text(format!(
        "{} {}",
        values::pick(rng, values::CITIES),
        values::pick(rng, values::TEAM_STEMS)
    ))
}

fn gen_artist(rng: &mut StdRng) -> Cell {
    gen_full_name(rng)
}

fn gen_gender(rng: &mut StdRng) -> Cell {
    Cell::Text(values::pick(rng, &["male", "female", "other"]).to_string())
}

fn gen_age(rng: &mut StdRng) -> Cell {
    Cell::Int(rng.gen_range(18..=90))
}

fn gen_year(rng: &mut StdRng) -> Cell {
    Cell::Int(rng.gen_range(1900..=2025))
}

fn gen_quantity(rng: &mut StdRng) -> Cell {
    Cell::Int(rng.gen_range(1..=500))
}

fn gen_rating(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(10..=50)) / 10.0)
}

fn gen_price(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(99..=99999)) / 100.0)
}

fn gen_salary(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(30..=300)) * 1000.0)
}

fn gen_balance(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(-500_000..=5_000_000)) / 100.0)
}

fn gen_txn_amount(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(1..=500_000)) / 100.0)
}

fn gen_tax_rate(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(0..=400)) / 1000.0)
}

fn gen_percentage(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(0..=1000)) / 10.0)
}

fn gen_temperature(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(-400..=450)) / 10.0)
}

fn gen_weight(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(1..=50000)) / 100.0)
}

fn gen_duration(rng: &mut StdRng) -> Cell {
    Cell::Int(rng.gen_range(1..=600))
}

fn gen_latitude(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(-90_000..=90_000)) / 1000.0)
}

fn gen_longitude(rng: &mut StdRng) -> Cell {
    Cell::Float(f64::from(rng.gen_range(-180_000..=180_000)) / 1000.0)
}

fn gen_bool_flag(rng: &mut StdRng) -> Cell {
    Cell::Bool(rng.gen())
}

fn gen_passport(rng: &mut StdRng) -> Cell {
    let c = char::from(b'a' + rng.gen_range(0..26u8));
    Cell::Text(format!("{c}{}", values::digits(rng, 8)))
}

fn gen_user_agent(rng: &mut StdRng) -> Cell {
    Cell::Text(format!(
        "mozilla/5.0 ({}) {}/{}",
        values::pick(rng, &["windows", "macintosh", "linux", "android", "iphone"]),
        values::pick(rng, &["chrome", "firefox", "safari", "edge"]),
        rng.gen_range(70..=125)
    ))
}

fn gen_domain_name(rng: &mut StdRng) -> Cell {
    Cell::Text(format!(
        "{}.{}",
        values::pick(rng, values::COMPANY_STEMS),
        values::pick(rng, values::TLDS)
    ))
}

fn gen_birth_date(rng: &mut StdRng) -> Cell {
    Cell::Text(format!(
        "{}-{:02}-{:02}",
        rng.gen_range(1940..=2007),
        rng.gen_range(1..=12),
        rng.gen_range(1..=28)
    ))
}

fn gen_product_name(rng: &mut StdRng) -> Cell {
    Cell::Text(format!(
        "{} {}",
        values::pick(rng, values::BRANDS),
        values::pick(rng, values::CATEGORIES)
    ))
}

#[allow(clippy::too_many_arguments)] // one row of the static type table
const fn t(
    domain: &'static str,
    concept: &'static str,
    raw_type: RawType,
    names: &'static [&'static str],
    comments: &'static [&'static str],
    confusion: Option<&'static str>,
    co_label: Option<(&'static str, f64)>,
    standalone: bool,
    gen: ValueGen,
) -> TypeDef {
    TypeDef { domain, concept, raw_type, names, comments, confusion, co_label, standalone, gen }
}

/// The full built-in type table. Order defines [`TypeId`] assignment
/// (background `null` is id 0; the first entry here is id 1).
pub static BUILTIN_TYPES: &[TypeDef] = &[
    // person
    t("person", "first_name", RawType::Text, &["first_name", "fname", "given_name"], &["given name of the person", "first name"], Some("nametext"), Some(("person.name", 0.3)), true, gen_first_name),
    t("person", "last_name", RawType::Text, &["last_name", "lname", "surname", "family_name"], &["family name", "surname of the person"], Some("nametext"), Some(("person.name", 0.3)), true, gen_last_name),
    t("person", "full_name", RawType::Text, &["full_name", "person_name", "customer_name", "employee_name"], &["full name of the person", "customer full name"], Some("nametext"), Some(("person.name", 0.3)), true, gen_full_name),
    t("person", "age", RawType::Integer, &["age", "person_age", "customer_age"], &["age in years"], Some("amount"), None, true, gen_age),
    t("person", "gender", RawType::Text, &["gender", "sex"], &["gender of the person"], Some("catcode"), None, true, gen_gender),
    t("person", "birth_date", RawType::Date, &["birth_date", "dob", "date_of_birth"], &["date of birth"], Some("timeval"), None, true, gen_birth_date),
    t("person", "email", RawType::Text, &["email", "email_address", "contact_email"], &["contact email address"], Some("nametext"), None, true, values_email),
    t("person", "phone_number", RawType::Text, &["phone", "phone_number", "mobile", "telephone"], &["contact phone number", "mobile phone"], Some("numcode"), None, true, values_phone),
    t("person", "ssn", RawType::Text, &["ssn", "social_security_number"], &["social security number", "pii: ssn"], Some("numcode"), None, true, values_ssn),
    t("person", "passport_number", RawType::Text, &["passport_number", "passport_no"], &["passport document number"], Some("numcode"), None, true, gen_passport),
    t("person", "job_title", RawType::Text, &["job_title", "title", "role", "occupation"], &["job title of the employee"], Some("catcode"), None, true, gen_job_title),
    t("person", "name", RawType::Text, &["name"], &["name"], Some("nametext"), None, false, gen_full_name),
    // location
    t("location", "city", RawType::Text, &["city", "city_name", "ship_city", "home_city"], &["city name", "ship-to city"], Some("nametext"), Some(("location.place", 0.3)), true, gen_city),
    t("location", "country", RawType::Text, &["country", "country_name", "nation"], &["country name"], Some("nametext"), Some(("location.place", 0.3)), true, gen_country),
    t("location", "state", RawType::Text, &["state", "province", "region_name"], &["state or province"], Some("nametext"), Some(("location.place", 0.25)), true, gen_state),
    t("location", "zip_code", RawType::Text, &["zip", "zip_code", "postal_code", "postcode"], &["postal code"], Some("numcode"), None, true, values_zip),
    t("location", "street_address", RawType::Text, &["address", "street_address", "addr_line1"], &["street address line"], Some("nametext"), None, true, values_street),
    t("location", "latitude", RawType::Float, &["latitude", "lat"], &["latitude in degrees"], Some("amount"), None, true, gen_latitude),
    t("location", "longitude", RawType::Float, &["longitude", "lon", "lng"], &["longitude in degrees"], Some("amount"), None, true, gen_longitude),
    t("location", "place", RawType::Text, &["place", "location"], &["place"], Some("nametext"), None, false, gen_city),
    // finance
    t("finance", "credit_card_number", RawType::Text, &["credit_card", "card_number", "cc_number", "pan"], &["payment card number", "pii: credit card"], Some("numcode"), None, true, values_cc),
    t("finance", "iban", RawType::Text, &["iban", "bank_account", "account_number"], &["international bank account number"], Some("numcode"), None, true, values_iban),
    t("finance", "currency_code", RawType::Text, &["currency", "currency_code", "ccy"], &["iso currency code"], Some("catcode"), None, true, gen_currency),
    t("finance", "price", RawType::Float, &["price", "unit_price", "list_price"], &["unit price"], Some("amount"), None, true, gen_price),
    t("finance", "salary", RawType::Float, &["salary", "annual_salary", "compensation"], &["annual salary"], Some("amount"), None, true, gen_salary),
    t("finance", "account_balance", RawType::Float, &["balance", "account_balance"], &["current account balance"], Some("amount"), None, true, gen_balance),
    t("finance", "transaction_amount", RawType::Float, &["amount", "txn_amount", "payment_amount"], &["transaction amount"], Some("amount"), None, true, gen_txn_amount),
    t("finance", "tax_rate", RawType::Float, &["tax_rate", "vat_rate"], &["applicable tax rate"], Some("amount"), None, true, gen_tax_rate),
    // organization
    t("organization", "company_name", RawType::Text, &["company", "company_name", "vendor", "supplier"], &["company name", "vendor name"], Some("nametext"), None, true, gen_company),
    t("organization", "department", RawType::Text, &["department", "dept", "division"], &["department name"], Some("catcode"), None, true, gen_department),
    t("organization", "team_name", RawType::Text, &["team", "team_name", "club"], &["sports team name"], Some("nametext"), None, true, gen_team),
    t("organization", "industry", RawType::Text, &["industry", "sector"], &["industry sector"], Some("catcode"), None, true, gen_industry),
    // time
    t("time", "year", RawType::Integer, &["year", "yr", "season_year"], &["calendar year"], Some("timeval"), None, true, gen_year),
    t("time", "date", RawType::Date, &["date", "event_date", "order_date", "created_date"], &["calendar date"], Some("timeval"), None, true, values_date),
    t("time", "timestamp", RawType::Timestamp, &["timestamp", "created_at", "updated_at", "event_time"], &["event timestamp"], Some("timeval"), None, true, values_timestamp),
    t("time", "month", RawType::Text, &["month", "month_name"], &["month of the year"], Some("timeval"), None, true, gen_month),
    t("time", "weekday", RawType::Text, &["weekday", "day_of_week"], &["day of the week"], Some("timeval"), None, true, gen_weekday),
    t("time", "duration_minutes", RawType::Integer, &["duration", "duration_min", "runtime"], &["duration in minutes"], Some("amount"), None, true, gen_duration),
    // product
    t("product", "product_name", RawType::Text, &["product", "product_name", "item_name"], &["product display name"], Some("nametext"), None, true, gen_product_name),
    t("product", "sku", RawType::Text, &["sku", "item_code", "product_code"], &["stock keeping unit"], Some("refcode"), None, true, values_sku),
    t("product", "category", RawType::Text, &["category", "product_category"], &["product category"], Some("catcode"), None, true, gen_category),
    t("product", "brand", RawType::Text, &["brand", "brand_name", "manufacturer"], &["brand name"], Some("nametext"), None, true, gen_brand),
    t("product", "rating", RawType::Float, &["rating", "avg_rating", "score"], &["average review rating"], Some("amount"), None, true, gen_rating),
    t("product", "quantity", RawType::Integer, &["quantity", "qty", "stock", "units"], &["units in stock"], Some("amount"), None, true, gen_quantity),
    t("product", "weight_kg", RawType::Float, &["weight", "weight_kg", "mass"], &["weight in kilograms"], Some("amount"), None, true, gen_weight),
    t("product", "color", RawType::Text, &["color", "colour"], &["product color"], Some("catcode"), None, true, gen_color),
    // web
    t("web", "url", RawType::Text, &["url", "link", "website", "homepage"], &["web address"], Some("nametext"), None, true, values_url),
    t("web", "ip_address", RawType::Text, &["ip", "ip_address", "client_ip"], &["client ip address"], Some("numcode"), None, true, values_ip),
    t("web", "user_agent", RawType::Text, &["user_agent", "ua_string"], &["browser user agent"], None, None, true, gen_user_agent),
    t("web", "domain_name", RawType::Text, &["domain", "domain_name", "host"], &["dns domain name"], Some("nametext"), None, true, gen_domain_name),
    t("web", "uuid", RawType::Text, &["uuid", "guid", "request_id"], &["unique identifier"], Some("refcode"), None, true, values_uuid),
    // culture (the WikiTable-flavored types)
    t("culture", "album", RawType::Text, &["album", "album_title"], &["music album title"], Some("nametext"), Some(("culture.creative_work", 0.3)), true, values_title),
    t("culture", "artist", RawType::Text, &["artist", "performer", "musician"], &["performing artist"], Some("nametext"), None, true, gen_artist),
    t("culture", "film_title", RawType::Text, &["film", "movie", "film_title"], &["film title"], Some("nametext"), Some(("culture.creative_work", 0.3)), true, values_title),
    t("culture", "book_title", RawType::Text, &["book", "book_title", "novel"], &["book title"], Some("nametext"), Some(("culture.creative_work", 0.3)), true, values_title),
    t("culture", "genre", RawType::Text, &["genre", "style"], &["genre"], Some("catcode"), None, true, gen_genre),
    t("culture", "language", RawType::Text, &["language", "lang"], &["language"], Some("catcode"), None, true, gen_language),
    t("culture", "nationality", RawType::Text, &["nationality", "citizenship"], &["nationality"], Some("catcode"), None, true, gen_nationality),
    t("culture", "award", RawType::Text, &["award", "prize", "honor"], &["award received"], Some("nametext"), None, true, gen_award),
    t("culture", "position", RawType::Text, &["position", "playing_position"], &["playing position"], Some("catcode"), None, true, gen_position),
    t("culture", "creative_work", RawType::Text, &["work", "title_of_work"], &["creative work"], Some("nametext"), None, false, values_title),
    // science / misc
    t("misc", "isbn", RawType::Text, &["isbn", "isbn13"], &["isbn-13 identifier"], Some("numcode"), None, true, values_isbn),
    t("misc", "doi", RawType::Text, &["doi", "paper_doi"], &["digital object identifier"], Some("refcode"), None, true, values_doi),
    t("misc", "temperature", RawType::Float, &["temperature", "temp_c"], &["temperature in celsius"], Some("amount"), None, true, gen_temperature),
    t("misc", "percentage", RawType::Float, &["percentage", "pct", "percent"], &["percentage value"], Some("amount"), None, true, gen_percentage),
    t("misc", "boolean_flag", RawType::Boolean, &["is_active", "enabled", "verified", "in_stock"], &["boolean flag"], None, None, true, gen_bool_flag),
    t("misc", "notes", RawType::Text, &["notes", "description", "remark"], &["free-text notes"], None, None, true, values_note),
];

// Thin wrappers: `values::*` generators are generic over `impl Rng`, the
// registry needs concrete `fn(&mut StdRng)` pointers.
fn values_email(rng: &mut StdRng) -> Cell { values::email(rng) }
fn values_phone(rng: &mut StdRng) -> Cell { values::phone_number(rng) }
fn values_ssn(rng: &mut StdRng) -> Cell { values::ssn(rng) }
fn values_zip(rng: &mut StdRng) -> Cell { values::zip_code(rng) }
fn values_street(rng: &mut StdRng) -> Cell { values::street_address(rng) }
fn values_cc(rng: &mut StdRng) -> Cell { values::credit_card(rng) }
fn values_iban(rng: &mut StdRng) -> Cell { values::iban(rng) }
fn values_date(rng: &mut StdRng) -> Cell { values::date(rng) }
fn values_timestamp(rng: &mut StdRng) -> Cell { values::timestamp(rng) }
fn values_sku(rng: &mut StdRng) -> Cell { values::sku(rng) }
fn values_url(rng: &mut StdRng) -> Cell { values::url(rng) }
fn values_ip(rng: &mut StdRng) -> Cell { values::ip_address(rng) }
fn values_uuid(rng: &mut StdRng) -> Cell { values::uuid(rng) }
fn values_title(rng: &mut StdRng) -> Cell { values::title(rng) }
fn values_isbn(rng: &mut StdRng) -> Cell { values::isbn(rng) }
fn values_doi(rng: &mut StdRng) -> Cell { values::doi(rng) }
fn values_note(rng: &mut StdRng) -> Cell { values::note(rng) }

/// Ambiguous column-name pools, keyed by confusion group.
pub fn ambiguous_names(group: &str) -> &'static [&'static str] {
    match group {
        "numcode" => &["num", "number", "no", "code", "val"],
        "nametext" => &["name", "title", "label", "text", "entry"],
        "amount" => &["value", "amt", "total", "x", "v"],
        "timeval" => &["dt", "time", "d", "t", "when"],
        "catcode" => &["type", "cat", "kind", "grp", "class"],
        "refcode" => &["ref", "key", "uid", "ext_id"],
        _ => &["col", "field", "data"],
    }
}

/// Generic names used by *unlabeled* (background) columns.
pub const BACKGROUND_NAMES: &[&str] = &[
    "misc", "data1", "data2", "aux", "tmp_field", "extra", "raw_blob", "internal_code",
    "legacy_col", "spare", "reserved1", "sys_marker",
];

/// The built-in catalog bound to a concrete [`TypeRegistry`].
pub struct BuiltinRegistry {
    registry: TypeRegistry,
}

impl Default for BuiltinRegistry {
    fn default() -> Self {
        Self::full()
    }
}

impl BuiltinRegistry {
    /// Registers every built-in type. `TypeId(i + 1)` corresponds to
    /// `BUILTIN_TYPES[i]` (id 0 is the background type).
    pub fn full() -> BuiltinRegistry {
        let mut registry = TypeRegistry::new();
        for def in BUILTIN_TYPES {
            registry.register(def.domain, def.concept);
        }
        BuiltinRegistry { registry }
    }

    /// The underlying interning registry (domain set `S`).
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// Static definition for a (non-background) type id.
    ///
    /// # Panics
    /// Panics for the background id or out-of-range ids.
    pub fn def(&self, id: TypeId) -> &'static TypeDef {
        assert!(!id.is_null(), "background type has no definition");
        &BUILTIN_TYPES[id.index() - 1]
    }

    /// All standalone (generatable) type ids.
    pub fn standalone_ids(&self) -> Vec<TypeId> {
        BUILTIN_TYPES
            .iter()
            .enumerate()
            .filter(|(_, d)| d.standalone)
            .map(|(i, _)| TypeId((i + 1) as u32))
            .collect()
    }

    /// Samples a cell value for the type.
    pub fn sample_value(&self, id: TypeId, rng: &mut StdRng) -> Cell {
        (self.def(id).gen)(rng)
    }

    /// Samples a column name: a descriptive one from the type's own pool,
    /// or an ambiguous one from its confusion group.
    pub fn sample_column_name(&self, id: TypeId, descriptive: bool, rng: &mut StdRng) -> String {
        let def = self.def(id);
        if descriptive {
            values::pick(rng, def.names).to_string()
        } else {
            let pool = def.confusion.map(ambiguous_names).unwrap_or(ambiguous_names(""));
            // Occasionally suffix with a digit, as real lazy schemas do.
            let base = values::pick(rng, pool);
            if rng.gen_bool(0.3) {
                format!("{base}{}", rng.gen_range(1..=9))
            } else {
                base.to_string()
            }
        }
    }

    /// Samples a comment for the type.
    pub fn sample_comment(&self, id: TypeId, rng: &mut StdRng) -> String {
        values::pick(rng, self.def(id).comments).to_string()
    }

    /// The co-label (if any) for a type, rolled against its probability.
    pub fn roll_co_label(&self, id: TypeId, rng: &mut StdRng) -> Option<TypeId> {
        let (name, p) = self.def(id).co_label?;
        if rng.gen_bool(p) {
            self.registry.by_name(name)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn catalog_has_expected_scale() {
        let b = BuiltinRegistry::full();
        assert!(BUILTIN_TYPES.len() >= 60, "catalog has {} types", BUILTIN_TYPES.len());
        assert_eq!(b.registry().len(), BUILTIN_TYPES.len() + 1);
        // Definitions align with ids.
        for (i, def) in BUILTIN_TYPES.iter().enumerate() {
            let id = TypeId((i + 1) as u32);
            let st = b.registry().get(id).unwrap();
            assert_eq!(st.name, format!("{}.{}", def.domain, def.concept));
            assert!(std::ptr::eq(b.def(id), def));
        }
    }

    #[test]
    fn every_standalone_type_generates_consistent_raw_type() {
        let b = BuiltinRegistry::full();
        let mut r = rng();
        for id in b.standalone_ids() {
            let def = b.def(id);
            for _ in 0..5 {
                let cell = b.sample_value(id, &mut r);
                match (def.raw_type, &cell) {
                    (RawType::Integer, Cell::Int(_))
                    | (RawType::Float, Cell::Float(_))
                    | (RawType::Boolean, Cell::Bool(_))
                    | (RawType::Text | RawType::Date | RawType::Timestamp, Cell::Text(_)) => {}
                    other => panic!("{}.{}: mismatched cell {other:?}", def.domain, def.concept),
                }
            }
        }
    }

    #[test]
    fn descriptive_names_come_from_own_pool() {
        let b = BuiltinRegistry::full();
        let mut r = rng();
        let phone = b.registry().by_name("person.phone_number").unwrap();
        for _ in 0..10 {
            let name = b.sample_column_name(phone, true, &mut r);
            assert!(b.def(phone).names.contains(&name.as_str()), "unexpected {name}");
        }
    }

    #[test]
    fn ambiguous_names_are_shared_across_the_confusion_group() {
        let b = BuiltinRegistry::full();
        let mut r = rng();
        let phone = b.registry().by_name("person.phone_number").unwrap();
        let cc = b.registry().by_name("finance.credit_card_number").unwrap();
        let pool = ambiguous_names("numcode");
        for id in [phone, cc] {
            let name = b.sample_column_name(id, false, &mut r);
            let stem: String = name.trim_end_matches(|c: char| c.is_ascii_digit()).to_string();
            assert!(pool.contains(&stem.as_str()), "{name} not from numcode pool");
        }
    }

    #[test]
    fn co_labels_roll_only_for_configured_types() {
        let b = BuiltinRegistry::full();
        let mut r = rng();
        let city = b.registry().by_name("location.city").unwrap();
        let mut hits = 0;
        for _ in 0..200 {
            if let Some(co) = b.roll_co_label(city, &mut r) {
                assert_eq!(b.registry().get(co).unwrap().name, "location.place");
                hits += 1;
            }
        }
        assert!(hits > 20 && hits < 120, "co-label rate off: {hits}/200");
        let ssn = b.registry().by_name("person.ssn").unwrap();
        assert!(b.roll_co_label(ssn, &mut r).is_none());
    }

    #[test]
    fn non_standalone_types_are_excluded_from_generation() {
        let b = BuiltinRegistry::full();
        let place = b.registry().by_name("location.place").unwrap();
        assert!(!b.standalone_ids().contains(&place));
        assert!(b.standalone_ids().len() >= 55);
    }

    #[test]
    #[should_panic(expected = "background type")]
    fn background_has_no_def() {
        let b = BuiltinRegistry::full();
        let _ = b.def(TypeId::NULL);
    }

    #[test]
    fn comments_are_sampled_from_templates() {
        let b = BuiltinRegistry::full();
        let mut r = rng();
        let cc = b.registry().by_name("finance.credit_card_number").unwrap();
        let c = b.sample_comment(cc, &mut r);
        assert!(b.def(cc).comments.contains(&c.as_str()));
    }
}
