//! Train / validation / test splits and the Table 2 dataset summary.

use crate::corpus::Corpus;
use serde::{Deserialize, Serialize};
use taste_core::rng::splitmix64;
use taste_core::Table;

/// Dataset split membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// Training set (80%).
    Train,
    /// Validation set (10%).
    Valid,
    /// Testing set (10%).
    Test,
}

impl Split {
    /// All splits in reporting order.
    pub const ALL: [Split; 3] = [Split::Train, Split::Valid, Split::Test];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Split::Train => "training",
            Split::Valid => "validation",
            Split::Test => "testing",
        }
    }
}

/// Deterministic split assignment of table `index` under `seed`
/// (80/10/10, hash-based so membership does not depend on corpus size).
pub fn assign_split(seed: u64, index: usize) -> Split {
    let h = splitmix64(seed ^ splitmix64(index as u64 ^ 0xA5A5_5A5A));
    match h % 10 {
        0..=7 => Split::Train,
        8 => Split::Valid,
        _ => Split::Test,
    }
}

impl Corpus {
    /// The tables belonging to `split`, in id order.
    pub fn split_tables(&self, split: Split) -> Vec<&Table> {
        self.tables
            .iter()
            .enumerate()
            .filter(|(i, _)| assign_split(self.spec.seed, *i) == split)
            .map(|(_, t)| t)
            .collect()
    }

    /// The Table 2 summary row for one split (or the whole corpus).
    pub fn summarize(&self, split: Option<Split>) -> DatasetSummary {
        let tables: Vec<&Table> = match split {
            Some(s) => self.split_tables(s),
            None => self.tables.iter().collect(),
        };
        let mut cols = 0usize;
        let mut unlabeled = 0usize;
        let mut types_present = std::collections::HashSet::new();
        for t in &tables {
            cols += t.width();
            for l in &t.labels {
                if l.is_empty() {
                    unlabeled += 1;
                } else {
                    for ty in l.iter() {
                        types_present.insert(ty);
                    }
                }
            }
        }
        DatasetSummary {
            name: match split {
                Some(s) => format!("{} - {}", self.spec.name, s.label()),
                None => self.spec.name.clone(),
            },
            tables: tables.len(),
            columns: cols,
            types: types_present.len(),
            pct_without_types: if cols == 0 { 0.0 } else { 100.0 * unlabeled as f64 / cols as f64 },
        }
    }
}

/// One row of the Table 2 dataset summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Dataset / split label.
    pub name: String,
    /// Number of tables.
    pub tables: usize,
    /// Number of columns.
    pub columns: usize,
    /// Number of distinct semantic types appearing.
    pub types: usize,
    /// Percentage of columns carrying no semantic type.
    pub pct_without_types: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;

    #[test]
    fn split_proportions_are_roughly_80_10_10() {
        let counts = (0..10_000).fold([0usize; 3], |mut acc, i| {
            match assign_split(0, i) {
                Split::Train => acc[0] += 1,
                Split::Valid => acc[1] += 1,
                Split::Test => acc[2] += 1,
            }
            acc
        });
        assert!((counts[0] as f64 / 10_000.0 - 0.8).abs() < 0.02, "{counts:?}");
        assert!((counts[1] as f64 / 10_000.0 - 0.1).abs() < 0.01);
        assert!((counts[2] as f64 / 10_000.0 - 0.1).abs() < 0.01);
    }

    #[test]
    fn assignment_is_stable_and_seed_dependent() {
        assert_eq!(assign_split(5, 17), assign_split(5, 17));
        let differs = (0..100).any(|i| assign_split(1, i) != assign_split(2, i));
        assert!(differs);
    }

    #[test]
    fn splits_partition_the_corpus() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(200, 3));
        let n: usize = Split::ALL.iter().map(|&s| corpus.split_tables(s).len()).sum();
        assert_eq!(n, 200);
    }

    #[test]
    fn summary_counts_add_up() {
        let corpus = Corpus::generate(CorpusSpec::synth_git(100, 0));
        let whole = corpus.summarize(None);
        assert_eq!(whole.tables, 100);
        assert_eq!(whole.columns, corpus.total_columns());
        assert!(whole.types > 30, "only {} types present", whole.types);
        assert!((whole.pct_without_types / 100.0 - corpus.unlabeled_fraction()).abs() < 1e-9);

        let split_cols: usize = Split::ALL
            .iter()
            .map(|&s| corpus.summarize(Some(s)).columns)
            .sum();
        assert_eq!(split_cols, whole.columns);
    }

    #[test]
    fn wiki_summary_has_zero_unlabeled() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(50, 0));
        for s in Split::ALL {
            assert_eq!(corpus.summarize(Some(s)).pct_without_types, 0.0);
        }
    }

    #[test]
    fn split_labels() {
        assert_eq!(Split::Train.label(), "training");
        assert_eq!(Split::Valid.label(), "validation");
        assert_eq!(Split::Test.label(), "testing");
    }
}
