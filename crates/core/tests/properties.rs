//! Property-based tests for core invariants: label sets, histograms,
//! and the multi-label metrics.

use proptest::prelude::*;
use taste_core::{EvalAccumulator, Histogram, LabelSet, TypeId};

fn label_set_strategy() -> impl Strategy<Value = LabelSet> {
    prop::collection::vec(0u32..40, 0..6)
        .prop_map(|ids| LabelSet::from_iter(ids.into_iter().map(TypeId)))
}

proptest! {
    #[test]
    fn label_sets_are_sorted_and_unique(ids in prop::collection::vec(0u32..100, 0..20)) {
        let ls = LabelSet::from_iter(ids.iter().map(|&i| TypeId(i)));
        let collected: Vec<TypeId> = ls.iter().collect();
        let mut sorted = collected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(collected, sorted);
        // Every non-null input id is present.
        for &i in &ids {
            if i != 0 {
                prop_assert!(ls.contains(TypeId(i)));
            }
        }
    }

    #[test]
    fn multi_hot_roundtrip(ls in label_set_strategy()) {
        let hot = ls.to_multi_hot(40);
        prop_assert_eq!(hot.len(), 40);
        let back = LabelSet::from_iter(
            hot.iter().enumerate().filter(|(_, &v)| v == 1.0).map(|(i, _)| TypeId(i as u32)),
        );
        prop_assert_eq!(back, ls.clone());
        // Background bit set exactly when empty.
        prop_assert_eq!(hot[0] == 1.0, ls.is_empty());
    }

    #[test]
    fn intersection_is_commutative_and_bounded(a in label_set_strategy(), b in label_set_strategy()) {
        prop_assert_eq!(a.intersection_len(&b), b.intersection_len(&a));
        prop_assert!(a.intersection_len(&b) <= a.len().min(b.len()));
        prop_assert_eq!(a.intersection_len(&a), a.len());
    }

    #[test]
    fn histogram_mass_conservation(values in prop::collection::vec(-1e6f64..1e6, 1..300), nbuckets in 1usize..32) {
        for h in [
            Histogram::equal_width(&values, nbuckets).unwrap(),
            Histogram::equal_depth(&values, nbuckets).unwrap(),
        ] {
            prop_assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), values.len() as u64);
            prop_assert_eq!(h.total, values.len() as u64);
            // Bounds ascend and cover all values.
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in &values {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            prop_assert!(h.buckets.first().unwrap().lo <= lo + 1e-9);
            prop_assert!(h.buckets.last().unwrap().hi >= hi - 1e-9);
            for w in h.buckets.windows(2) {
                prop_assert!(w[0].hi <= w[1].lo + 1e-9);
            }
        }
    }

    #[test]
    fn equal_depth_buckets_never_split_ties(reps in prop::collection::vec((0i32..20, 1usize..30), 1..10), nbuckets in 1usize..8) {
        let mut values = Vec::new();
        for (v, count) in &reps {
            values.extend(std::iter::repeat_n(f64::from(*v), *count));
        }
        let h = Histogram::equal_depth(&values, nbuckets).unwrap();
        // No value may appear in two buckets: bucket ranges are disjoint
        // except possibly at shared boundaries with zero overlap mass.
        for w in h.buckets.windows(2) {
            prop_assert!(w[0].hi < w[1].lo || (w[0].hi - w[1].lo).abs() > 0.0 || w[0].hi <= w[1].lo);
            prop_assert!(w[0].hi <= w[1].lo);
        }
    }

    #[test]
    fn metric_scores_are_bounded(pairs in prop::collection::vec((label_set_strategy(), label_set_strategy()), 1..50)) {
        let mut acc = EvalAccumulator::new(40);
        for (pred, truth) in &pairs {
            acc.observe(pred, truth);
        }
        let s = acc.scores();
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1));
        prop_assert!(s.f1 <= s.precision.max(s.recall) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&acc.macro_f1()));
        prop_assert_eq!(acc.columns(), pairs.len() as u64);
    }

    #[test]
    fn perfect_predictions_always_score_one(truths in prop::collection::vec(label_set_strategy(), 1..30)) {
        let mut acc = EvalAccumulator::new(40);
        for t in &truths {
            acc.observe(t, t);
        }
        let s = acc.scores();
        prop_assert_eq!(s.precision, 1.0);
        prop_assert_eq!(s.recall, 1.0);
        prop_assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn retain_in_is_monotone(ls in label_set_strategy(), keep in prop::collection::vec(any::<bool>(), 40)) {
        let mut retained = ls.clone();
        retained.retain_in(&keep);
        prop_assert!(retained.len() <= ls.len());
        for id in retained.iter() {
            prop_assert!(ls.contains(id));
            prop_assert!(keep[id.index()]);
        }
    }
}
