//! Column histograms — the optional statistics metadata of the
//! *TASTE with histogram* variant (§6.2).
//!
//! MySQL 8.0 builds either *singleton* or *equi-height* histograms via
//! `ANALYZE TABLE ... UPDATE HISTOGRAM`. We implement the two families the
//! paper names (equal-width and equal-height/equal-depth) over the numeric
//! view of a column. Text columns are histogrammed over rendered length,
//! which preserves the distribution-shape signal the model exploits
//! (e.g. credit card numbers have constant length 16, phone numbers 10-11).

use serde::{Deserialize, Serialize};

/// Which construction rule produced the histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistogramKind {
    /// Buckets of equal value-range width.
    EqualWidth,
    /// Buckets of (approximately) equal row counts; MySQL's "equi-height".
    EqualDepth,
}

impl HistogramKind {
    /// Stable token used when featurizing the histogram kind.
    pub fn token(self) -> &'static str {
        match self {
            HistogramKind::EqualWidth => "equal_width",
            HistogramKind::EqualDepth => "equal_depth",
        }
    }
}

/// A single histogram bucket `[lo, hi]` holding `count` rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Number of rows falling in the bucket.
    pub count: u64,
}

/// A column histogram over the numeric view of the column's values
/// (values themselves for numeric columns, rendered length for text).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Construction rule.
    pub kind: HistogramKind,
    /// Buckets in ascending bound order.
    pub buckets: Vec<Bucket>,
    /// Total number of (non-null) rows histogrammed.
    pub total: u64,
}

impl Histogram {
    /// Builds an equal-width histogram with `nbuckets` buckets.
    ///
    /// Returns `None` when `values` is empty or `nbuckets == 0`. A column
    /// of constant value yields a single bucket covering that point.
    pub fn equal_width(values: &[f64], nbuckets: usize) -> Option<Histogram> {
        if values.is_empty() || nbuckets == 0 {
            return None;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        if lo == hi {
            return Some(Histogram {
                kind: HistogramKind::EqualWidth,
                buckets: vec![Bucket { lo, hi, count: values.len() as u64 }],
                total: values.len() as u64,
            });
        }
        let width = (hi - lo) / nbuckets as f64;
        let mut counts = vec![0u64; nbuckets];
        for &v in values {
            let mut b = ((v - lo) / width) as usize;
            if b >= nbuckets {
                b = nbuckets - 1; // v == hi lands in the last bucket
            }
            counts[b] += 1;
        }
        let buckets = counts
            .into_iter()
            .enumerate()
            .map(|(i, count)| Bucket {
                lo: lo + width * i as f64,
                hi: lo + width * (i + 1) as f64,
                count,
            })
            .collect();
        Some(Histogram {
            kind: HistogramKind::EqualWidth,
            buckets,
            total: values.len() as u64,
        })
    }

    /// Builds an equal-depth (equi-height) histogram with `nbuckets`
    /// buckets. Values are sorted and cut into runs of near-equal size;
    /// runs of identical values are never split across buckets, so the
    /// realized bucket count can be below `nbuckets`.
    pub fn equal_depth(values: &[f64], nbuckets: usize) -> Option<Histogram> {
        if values.is_empty() || nbuckets == 0 {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let target = (n as f64 / nbuckets as f64).ceil() as usize;
        let mut buckets = Vec::with_capacity(nbuckets);
        let mut start = 0usize;
        while start < n {
            let mut end = (start + target).min(n);
            // Extend past ties so equal values stay in one bucket.
            while end < n && sorted[end] == sorted[end - 1] {
                end += 1;
            }
            buckets.push(Bucket {
                lo: sorted[start],
                hi: sorted[end - 1],
                count: (end - start) as u64,
            });
            start = end;
        }
        Some(Histogram {
            kind: HistogramKind::EqualDepth,
            buckets,
            total: n as u64,
        })
    }

    /// Number of buckets.
    pub fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// A fixed-width feature vector summarizing the histogram for model
    /// input: `[kind, nbuckets/64, normalized bucket mass...]` padded or
    /// truncated to `dim` entries. This is the `M_n^c` featurization the
    /// *with histogram* variant adds.
    pub fn features(&self, dim: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(dim);
        if dim == 0 {
            return out;
        }
        out.push(match self.kind {
            HistogramKind::EqualWidth => 0.0,
            HistogramKind::EqualDepth => 1.0,
        });
        if dim > 1 {
            out.push(self.nbuckets() as f32 / 64.0);
        }
        let total = self.total.max(1) as f32;
        for b in &self.buckets {
            if out.len() == dim {
                break;
            }
            out.push(b.count as f32 / total);
        }
        out.resize(dim, 0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_counts_sum_to_total() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::equal_width(&vals, 10).unwrap();
        assert_eq!(h.nbuckets(), 10);
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 100);
        assert_eq!(h.total, 100);
        // Uniform data: each bucket holds 10.
        assert!(h.buckets.iter().all(|b| b.count == 10));
    }

    #[test]
    fn equal_width_constant_column_single_bucket() {
        let vals = vec![5.0; 17];
        let h = Histogram::equal_width(&vals, 8).unwrap();
        assert_eq!(h.nbuckets(), 1);
        assert_eq!(h.buckets[0].count, 17);
        assert_eq!(h.buckets[0].lo, 5.0);
        assert_eq!(h.buckets[0].hi, 5.0);
    }

    #[test]
    fn equal_width_max_value_in_last_bucket() {
        let vals = vec![0.0, 10.0];
        let h = Histogram::equal_width(&vals, 4).unwrap();
        assert_eq!(h.buckets.last().unwrap().count, 1);
        assert_eq!(h.buckets.first().unwrap().count, 1);
    }

    #[test]
    fn equal_depth_balances_counts() {
        let vals: Vec<f64> = (0..97).map(|i| i as f64).collect();
        let h = Histogram::equal_depth(&vals, 10).unwrap();
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 97);
        for b in &h.buckets {
            assert!(b.count <= 11, "bucket too deep: {b:?}");
        }
    }

    #[test]
    fn equal_depth_never_splits_ties() {
        let mut vals = vec![1.0; 50];
        vals.extend(vec![2.0; 2]);
        let h = Histogram::equal_depth(&vals, 5).unwrap();
        // All 1.0s must share one bucket despite the depth target of 11.
        assert_eq!(h.buckets[0].count, 50);
        assert_eq!(h.buckets[1].count, 2);
    }

    #[test]
    fn bucket_bounds_ascend() {
        let vals: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        for h in [
            Histogram::equal_width(&vals, 7).unwrap(),
            Histogram::equal_depth(&vals, 7).unwrap(),
        ] {
            for w in h.buckets.windows(2) {
                assert!(w[0].hi <= w[1].lo + 1e-9, "{:?} then {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn empty_or_degenerate_inputs_yield_none() {
        assert!(Histogram::equal_width(&[], 4).is_none());
        assert!(Histogram::equal_depth(&[], 4).is_none());
        assert!(Histogram::equal_width(&[1.0], 0).is_none());
        assert!(Histogram::equal_width(&[f64::NAN], 4).is_none());
    }

    #[test]
    fn feature_vector_has_requested_dim_and_mass_normalized() {
        let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let h = Histogram::equal_depth(&vals, 8).unwrap();
        let f = h.features(12);
        assert_eq!(f.len(), 12);
        assert_eq!(f[0], 1.0); // equal-depth marker
        let mass: f32 = f[2..].iter().sum();
        assert!((mass - 1.0).abs() < 1e-5, "mass {mass}");
        assert!(h.features(0).is_empty());
        assert_eq!(h.features(1).len(), 1);
    }
}
