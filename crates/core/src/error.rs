//! Error type shared across the TASTE workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TasteError>;

/// Unified error type for the TASTE reproduction.
///
/// Variants are deliberately coarse: each crate maps its internal failure
/// modes onto one of these categories so callers can match on the *kind*
/// of failure without depending on crate internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TasteError {
    /// A lookup referenced a table, column, or semantic type that does not
    /// exist in the relevant registry or catalog.
    NotFound(String),
    /// An argument violated a documented precondition (e.g. `alpha > beta`,
    /// zero-width tensor, empty vocabulary).
    InvalidArgument(String),
    /// Two components disagreed about shape or dimensionality (tensor
    /// shapes, sequence lengths, classifier head widths, ...).
    ShapeMismatch(String),
    /// The simulated database rejected an operation (connection limits,
    /// unknown schema object, malformed scan request).
    Database(String),
    /// Serialization or deserialization of a checkpoint / report failed.
    Serde(String),
    /// The pipelined scheduler reached an inconsistent state (a stage ran
    /// before its predecessor, a worker panicked, ...).
    Scheduler(String),
    /// Training diverged or produced a non-finite loss.
    Training(String),
}

impl TasteError {
    /// Shorthand for [`TasteError::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        TasteError::NotFound(what.into())
    }

    /// Shorthand for [`TasteError::InvalidArgument`].
    pub fn invalid(what: impl Into<String>) -> Self {
        TasteError::InvalidArgument(what.into())
    }

    /// Shorthand for [`TasteError::ShapeMismatch`].
    pub fn shape(what: impl Into<String>) -> Self {
        TasteError::ShapeMismatch(what.into())
    }
}

impl fmt::Display for TasteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TasteError::NotFound(s) => write!(f, "not found: {s}"),
            TasteError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            TasteError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            TasteError::Database(s) => write!(f, "database error: {s}"),
            TasteError::Serde(s) => write!(f, "serialization error: {s}"),
            TasteError::Scheduler(s) => write!(f, "scheduler error: {s}"),
            TasteError::Training(s) => write!(f, "training error: {s}"),
        }
    }
}

impl std::error::Error for TasteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = TasteError::not_found("table t1");
        assert_eq!(e.to_string(), "not found: table t1");
        let e = TasteError::invalid("alpha > beta");
        assert_eq!(e.to_string(), "invalid argument: alpha > beta");
        let e = TasteError::shape("312 vs 64");
        assert_eq!(e.to_string(), "shape mismatch: 312 vs 64");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TasteError::not_found("x"), TasteError::not_found("x"));
        assert_ne!(TasteError::not_found("x"), TasteError::invalid("x"));
    }
}
