//! Error type shared across the TASTE workspace.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TasteError>;

/// Unified error type for the TASTE reproduction.
///
/// Variants are deliberately coarse: each crate maps its internal failure
/// modes onto one of these categories so callers can match on the *kind*
/// of failure without depending on crate internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TasteError {
    /// A lookup referenced a table, column, or semantic type that does not
    /// exist in the relevant registry or catalog.
    NotFound(String),
    /// An argument violated a documented precondition (e.g. `alpha > beta`,
    /// zero-width tensor, empty vocabulary).
    InvalidArgument(String),
    /// Two components disagreed about shape or dimensionality (tensor
    /// shapes, sequence lengths, classifier head widths, ...).
    ShapeMismatch(String),
    /// The simulated database rejected an operation (connection limits,
    /// unknown schema object, malformed scan request).
    Database(String),
    /// Serialization or deserialization of a checkpoint / report failed.
    Serde(String),
    /// The pipelined scheduler reached an inconsistent state (a stage ran
    /// before its predecessor, a worker panicked, ...).
    Scheduler(String),
    /// Training diverged or produced a non-finite loss.
    Training(String),
    /// A transient fault (dropped connection, throttled query, flaky
    /// network) that is expected to succeed if the operation is retried.
    Transient(String),
    /// An operation exceeded its deadline (query timeout, connection-pool
    /// acquire timeout). Retryable, but callers should budget for it.
    Timeout(String),
    /// The operation was cancelled cooperatively (watchdog deadline, batch
    /// halt, shutdown). Never retryable: the cancellation is a decision,
    /// not a fault, and retrying would override it.
    Cancelled(String),
    /// Persisted state failed its integrity check (journal record or
    /// cached latent with a bad checksum, torn write, bad magic). Never
    /// retryable: re-reading the same bytes yields the same corruption;
    /// the record must be quarantined instead.
    Corrupt(String),
    /// The engine's admission gate refused the work because the service
    /// is saturated (in-flight budget and admission queue both full).
    /// Never retryable *by the engine*: an immediate retry is exactly the
    /// load the gate is shedding. Callers should back off and resubmit
    /// once capacity frees up.
    Overloaded(String),
}

impl TasteError {
    /// Shorthand for [`TasteError::NotFound`].
    pub fn not_found(what: impl Into<String>) -> Self {
        TasteError::NotFound(what.into())
    }

    /// Shorthand for [`TasteError::InvalidArgument`].
    pub fn invalid(what: impl Into<String>) -> Self {
        TasteError::InvalidArgument(what.into())
    }

    /// Shorthand for [`TasteError::ShapeMismatch`].
    pub fn shape(what: impl Into<String>) -> Self {
        TasteError::ShapeMismatch(what.into())
    }

    /// Shorthand for [`TasteError::Transient`].
    pub fn transient(what: impl Into<String>) -> Self {
        TasteError::Transient(what.into())
    }

    /// Shorthand for [`TasteError::Timeout`].
    pub fn timeout(what: impl Into<String>) -> Self {
        TasteError::Timeout(what.into())
    }

    /// Shorthand for [`TasteError::Cancelled`].
    pub fn cancelled(what: impl Into<String>) -> Self {
        TasteError::Cancelled(what.into())
    }

    /// Shorthand for [`TasteError::Corrupt`].
    pub fn corrupt(what: impl Into<String>) -> Self {
        TasteError::Corrupt(what.into())
    }

    /// Shorthand for [`TasteError::Overloaded`].
    pub fn overloaded(what: impl Into<String>) -> Self {
        TasteError::Overloaded(what.into())
    }

    /// Whether retrying the failed operation can plausibly succeed.
    ///
    /// This is the *single source of truth* for retryability across the
    /// workspace: the retry loop, the engine's degradation paths, and the
    /// journal quarantine logic all consult it rather than matching
    /// variants themselves.
    ///
    /// Only fault-style failures ([`Transient`](TasteError::Transient) and
    /// [`Timeout`](TasteError::Timeout)) are retryable; logical errors
    /// (missing tables, bad arguments, shape mismatches) never are.
    /// [`Cancelled`](TasteError::Cancelled) is a decision, not a fault,
    /// [`Corrupt`](TasteError::Corrupt) is deterministic, and
    /// [`Overloaded`](TasteError::Overloaded) is the admission gate
    /// *shedding* load — an immediate retry would re-apply the very
    /// pressure being shed — so all three are explicitly non-retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(self, TasteError::Transient(_) | TasteError::Timeout(_))
    }
}

impl fmt::Display for TasteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TasteError::NotFound(s) => write!(f, "not found: {s}"),
            TasteError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
            TasteError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            TasteError::Database(s) => write!(f, "database error: {s}"),
            TasteError::Serde(s) => write!(f, "serialization error: {s}"),
            TasteError::Scheduler(s) => write!(f, "scheduler error: {s}"),
            TasteError::Training(s) => write!(f, "training error: {s}"),
            TasteError::Transient(s) => write!(f, "transient error: {s}"),
            TasteError::Timeout(s) => write!(f, "timeout: {s}"),
            TasteError::Cancelled(s) => write!(f, "cancelled: {s}"),
            TasteError::Corrupt(s) => write!(f, "corrupt: {s}"),
            TasteError::Overloaded(s) => write!(f, "overloaded: {s}"),
        }
    }
}

impl std::error::Error for TasteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = TasteError::not_found("table t1");
        assert_eq!(e.to_string(), "not found: table t1");
        let e = TasteError::invalid("alpha > beta");
        assert_eq!(e.to_string(), "invalid argument: alpha > beta");
        let e = TasteError::shape("312 vs 64");
        assert_eq!(e.to_string(), "shape mismatch: 312 vs 64");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TasteError::not_found("x"), TasteError::not_found("x"));
        assert_ne!(TasteError::not_found("x"), TasteError::invalid("x"));
    }

    /// One instance of every variant, so exhaustiveness tests stay in
    /// sync with the enum: adding a variant without updating this list
    /// fails the non-exhaustive-match compile check below.
    fn every_variant() -> Vec<TasteError> {
        vec![
            TasteError::NotFound("x".into()),
            TasteError::InvalidArgument("x".into()),
            TasteError::ShapeMismatch("x".into()),
            TasteError::Database("x".into()),
            TasteError::Serde("x".into()),
            TasteError::Scheduler("x".into()),
            TasteError::Training("x".into()),
            TasteError::Transient("x".into()),
            TasteError::Timeout("x".into()),
            TasteError::Cancelled("x".into()),
            TasteError::Corrupt("x".into()),
            TasteError::Overloaded("x".into()),
        ]
    }

    #[test]
    fn retryability_is_classified_for_every_variant() {
        // The single source of truth: enumerate EVERY variant and check
        // is_retryable() against the expected classification. The match
        // below is deliberately exhaustive (no `_` arm), so a new variant
        // cannot ship without being classified here.
        for e in every_variant() {
            let expected = match &e {
                TasteError::Transient(_) | TasteError::Timeout(_) => true,
                TasteError::NotFound(_)
                | TasteError::InvalidArgument(_)
                | TasteError::ShapeMismatch(_)
                | TasteError::Database(_)
                | TasteError::Serde(_)
                | TasteError::Scheduler(_)
                | TasteError::Training(_)
                | TasteError::Cancelled(_)
                | TasteError::Corrupt(_)
                | TasteError::Overloaded(_) => false,
            };
            assert_eq!(e.is_retryable(), expected, "misclassified: {e:?}");
        }
    }

    #[test]
    fn only_fault_variants_are_retryable() {
        assert!(TasteError::transient("conn reset").is_retryable());
        assert!(TasteError::timeout("scan > 5s").is_retryable());
        assert!(!TasteError::not_found("t1").is_retryable());
        assert!(!TasteError::invalid("alpha").is_retryable());
        assert!(!TasteError::Database("x".into()).is_retryable());
        assert!(!TasteError::Scheduler("x".into()).is_retryable());
        assert!(!TasteError::overloaded("admission queue full").is_retryable());
    }

    #[test]
    fn cancelled_and_corrupt_are_never_retryable() {
        assert!(!TasteError::cancelled("watchdog deadline").is_retryable());
        assert!(!TasteError::corrupt("journal crc mismatch").is_retryable());
        assert_eq!(
            TasteError::cancelled("batch halt").to_string(),
            "cancelled: batch halt"
        );
        assert_eq!(
            TasteError::corrupt("record 3").to_string(),
            "corrupt: record 3"
        );
    }

    #[test]
    fn fault_variants_display() {
        assert_eq!(TasteError::transient("conn reset").to_string(), "transient error: conn reset");
        assert_eq!(TasteError::timeout("scan").to_string(), "timeout: scan");
        assert_eq!(
            TasteError::overloaded("64 queued").to_string(),
            "overloaded: 64 queued"
        );
    }
}
