//! Multi-label precision / recall / F1 — the prediction-quality metrics of
//! Tables 3 and 4.
//!
//! The paper evaluates a multi-label classification task; following the
//! convention of TURL and Doduo (and of the paper), scores are
//! *micro-averaged* over (column, type) decisions: every predicted label is
//! one decision, true positives are predicted labels that appear in the
//! ground truth. Columns with no real type are scored through the explicit
//! background label (`type: null`), exactly as §6.1.1 assigns it.

use crate::labels::LabelSet;
use serde::{Deserialize, Serialize};

/// Final precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalScores {
    /// Micro precision: TP / (TP + FP).
    pub precision: f64,
    /// Micro recall: TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl EvalScores {
    /// Computes F1 from raw counts; conventions: 0/0 = 0.
    pub fn from_counts(tp: u64, fp: u64, fn_: u64) -> EvalScores {
        let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        EvalScores { precision, recall, f1 }
    }
}

/// Streaming accumulator of multi-label confusion counts.
///
/// Feed it `(predicted, truth)` pairs with [`EvalAccumulator::observe`]
/// and read the micro scores with [`EvalAccumulator::scores`]. Per-type
/// counts are tracked too, enabling macro averaging and per-type drill
/// down in the experiment reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalAccumulator {
    ntypes: usize,
    tp: Vec<u64>,
    fp: Vec<u64>,
    fn_: Vec<u64>,
    columns: u64,
}

impl EvalAccumulator {
    /// Creates an accumulator for a domain of `ntypes` types (index 0 is
    /// the background type).
    pub fn new(ntypes: usize) -> Self {
        EvalAccumulator {
            ntypes,
            tp: vec![0; ntypes],
            fp: vec![0; ntypes],
            fn_: vec![0; ntypes],
            columns: 0,
        }
    }

    /// Records one column's decisions. Empty sets are mapped to the
    /// background label on both sides, so "correctly predicted nothing"
    /// counts as a background true positive (the paper's `type: null`).
    pub fn observe(&mut self, predicted: &LabelSet, truth: &LabelSet) {
        self.columns += 1;
        let bg = 0usize;
        if predicted.is_empty() && truth.is_empty() {
            self.tp[bg] += 1;
            return;
        }
        if predicted.is_empty() {
            // Predicted background, truth has labels.
            self.fp[bg] += 1;
            for t in truth.iter() {
                if t.index() < self.ntypes {
                    self.fn_[t.index()] += 1;
                }
            }
            return;
        }
        if truth.is_empty() {
            self.fn_[bg] += 1;
            for p in predicted.iter() {
                if p.index() < self.ntypes {
                    self.fp[p.index()] += 1;
                }
            }
            return;
        }
        for p in predicted.iter() {
            if p.index() >= self.ntypes {
                continue;
            }
            if truth.contains(p) {
                self.tp[p.index()] += 1;
            } else {
                self.fp[p.index()] += 1;
            }
        }
        for t in truth.iter() {
            if t.index() < self.ntypes && !predicted.contains(t) {
                self.fn_[t.index()] += 1;
            }
        }
    }

    /// Micro-averaged scores over all (column, type) decisions.
    pub fn scores(&self) -> EvalScores {
        let tp: u64 = self.tp.iter().sum();
        let fp: u64 = self.fp.iter().sum();
        let fn_: u64 = self.fn_.iter().sum();
        EvalScores::from_counts(tp, fp, fn_)
    }

    /// Macro-averaged F1 over types that appear in predictions or truth.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.ntypes {
            if self.tp[i] + self.fp[i] + self.fn_[i] == 0 {
                continue;
            }
            sum += EvalScores::from_counts(self.tp[i], self.fp[i], self.fn_[i]).f1;
            n += 1;
        }
        if n == 0 { 0.0 } else { sum / n as f64 }
    }

    /// Per-type `(tp, fp, fn)` counts for drill-down reporting.
    pub fn type_counts(&self, type_index: usize) -> Option<(u64, u64, u64)> {
        if type_index >= self.ntypes {
            return None;
        }
        Some((self.tp[type_index], self.fp[type_index], self.fn_[type_index]))
    }

    /// Number of columns observed.
    pub fn columns(&self) -> u64 {
        self.columns
    }

    /// Merges another accumulator (same domain width) into this one.
    pub fn merge(&mut self, other: &EvalAccumulator) {
        assert_eq!(self.ntypes, other.ntypes, "accumulator domain widths differ");
        for i in 0..self.ntypes {
            self.tp[i] += other.tp[i];
            self.fp[i] += other.fp[i];
            self.fn_[i] += other.fn_[i];
        }
        self.columns += other.columns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeId;

    fn ls(ids: &[u32]) -> LabelSet {
        LabelSet::from_iter(ids.iter().map(|&i| TypeId(i)))
    }

    #[test]
    fn perfect_predictions_score_one() {
        let mut acc = EvalAccumulator::new(5);
        acc.observe(&ls(&[1, 2]), &ls(&[1, 2]));
        acc.observe(&ls(&[]), &ls(&[]));
        let s = acc.scores();
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(acc.columns(), 2);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let mut acc = EvalAccumulator::new(5);
        acc.observe(&ls(&[3]), &ls(&[1]));
        let s = acc.scores();
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn partial_overlap_counts_correctly() {
        let mut acc = EvalAccumulator::new(5);
        // Predicted {1,3}, truth {1,2}: TP=1 (type1), FP=1 (type3), FN=1 (type2).
        acc.observe(&ls(&[1, 3]), &ls(&[1, 2]));
        let s = acc.scores();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!((s.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn background_column_misprediction_penalized_both_ways() {
        let mut acc = EvalAccumulator::new(5);
        // Truth background, predicted type 1: one FP (type1) and one FN (bg).
        acc.observe(&ls(&[1]), &ls(&[]));
        let (tp0, fp0, fn0) = acc.type_counts(0).unwrap();
        assert_eq!((tp0, fp0, fn0), (0, 0, 1));
        let (tp1, fp1, fn1) = acc.type_counts(1).unwrap();
        assert_eq!((tp1, fp1, fn1), (0, 1, 0));

        // Truth type 2, predicted background: FP (bg) and FN (type2).
        acc.observe(&ls(&[]), &ls(&[2]));
        let (_, fp0, _) = acc.type_counts(0).unwrap();
        assert_eq!(fp0, 1);
        let (_, _, fn2) = acc.type_counts(2).unwrap();
        assert_eq!(fn2, 1);
    }

    #[test]
    fn macro_f1_ignores_untouched_types() {
        let mut acc = EvalAccumulator::new(100);
        acc.observe(&ls(&[1]), &ls(&[1])); // type1: F1 = 1
        acc.observe(&ls(&[2]), &ls(&[3])); // type2: F1 = 0, type3: F1 = 0
        let macro_f1 = acc.macro_f1();
        assert!((macro_f1 - (1.0 + 0.0 + 0.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = EvalAccumulator::new(4);
        a.observe(&ls(&[1]), &ls(&[1]));
        let mut b = EvalAccumulator::new(4);
        b.observe(&ls(&[2]), &ls(&[1]));
        a.merge(&b);
        assert_eq!(a.columns(), 2);
        let s = a.scores();
        assert!((s.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_counts_give_zero_not_nan() {
        let acc = EvalAccumulator::new(3);
        let s = acc.scores();
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
        assert_eq!(acc.macro_f1(), 0.0);
    }

    #[test]
    fn out_of_domain_type_is_ignored() {
        let mut acc = EvalAccumulator::new(2);
        acc.observe(&ls(&[9]), &ls(&[9]));
        // Both sides carried only out-of-domain labels; nothing counted.
        let s = acc.scores();
        assert_eq!(s.f1, 0.0);
        assert!(acc.type_counts(9).is_none());
    }
}
