//! Multi-label admitted-type sets (`A^c` in the paper).
//!
//! A column can carry zero, one, or several semantic types. The empty set
//! is semantically the background type (`type: null`). Sets are small
//! (typically 0-3 labels), so a sorted `Vec<TypeId>` beats a hash set.

use crate::types::TypeId;
use serde::{Deserialize, Serialize};

/// A sorted, deduplicated set of semantic type labels for one column.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelSet {
    ids: Vec<TypeId>,
}

impl LabelSet {
    /// The empty set (background / `type: null`).
    pub fn empty() -> Self {
        LabelSet { ids: Vec::new() }
    }

    /// Builds a set from any iterator of ids, sorting and deduplicating.
    /// The background id [`TypeId::NULL`] is never stored explicitly:
    /// "has no real labels" *is* the background state.
    ///
    /// Intentionally shadows `FromIterator::from_iter` (which delegates
    /// here) so callers get the documented semantics without importing
    /// the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = TypeId>) -> Self {
        let mut ids: Vec<TypeId> = iter.into_iter().filter(|id| !id.is_null()).collect();
        ids.sort_unstable();
        ids.dedup();
        LabelSet { ids }
    }

    /// Inserts a label; returns whether the set changed.
    pub fn insert(&mut self, id: TypeId) -> bool {
        if id.is_null() {
            return false;
        }
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes a label; returns whether it was present.
    pub fn remove(&mut self, id: TypeId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, id: TypeId) -> bool {
        if id.is_null() {
            return self.ids.is_empty();
        }
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of real labels (the background type does not count).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the column carries no real semantic type (background).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over the real labels in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.ids.iter().copied()
    }

    /// Retains only labels in `keep`, dropping the rest. This is the
    /// *retained type set* reduction of §6.6 (WikiTable-S_k): a column
    /// left with no labels becomes background.
    pub fn retain_in(&mut self, keep: &[bool]) {
        self.ids.retain(|id| keep.get(id.index()).copied().unwrap_or(false));
    }

    /// Intersection size with another set.
    pub fn intersection_len(&self, other: &LabelSet) -> usize {
        let mut count = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Dense multi-hot encoding of width `ntypes`. Index 0 (background)
    /// is set exactly when the set is empty, matching the paper's
    /// `type: null` assignment for unlabeled columns.
    pub fn to_multi_hot(&self, ntypes: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; ntypes];
        if self.ids.is_empty() {
            if ntypes > 0 {
                v[0] = 1.0;
            }
        } else {
            for id in &self.ids {
                if id.index() < ntypes {
                    v[id.index()] = 1.0;
                }
            }
        }
        v
    }
}

impl FromIterator<TypeId> for LabelSet {
    fn from_iter<I: IntoIterator<Item = TypeId>>(iter: I) -> Self {
        LabelSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s = LabelSet::from_iter([TypeId(5), TypeId(2), TypeId(5), TypeId(9)]);
        let ids: Vec<_> = s.iter().collect();
        assert_eq!(ids, vec![TypeId(2), TypeId(5), TypeId(9)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn null_is_never_stored() {
        let s = LabelSet::from_iter([TypeId::NULL, TypeId(1)]);
        assert_eq!(s.len(), 1);
        let mut s2 = LabelSet::empty();
        assert!(!s2.insert(TypeId::NULL));
        assert!(s2.is_empty());
    }

    #[test]
    fn contains_null_means_empty() {
        assert!(LabelSet::empty().contains(TypeId::NULL));
        assert!(!LabelSet::from_iter([TypeId(1)]).contains(TypeId::NULL));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = LabelSet::empty();
        assert!(s.insert(TypeId(3)));
        assert!(!s.insert(TypeId(3)));
        assert!(s.contains(TypeId(3)));
        assert!(s.remove(TypeId(3)));
        assert!(!s.remove(TypeId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn multi_hot_background_at_zero() {
        let empty = LabelSet::empty().to_multi_hot(4);
        assert_eq!(empty, vec![1.0, 0.0, 0.0, 0.0]);
        let labeled = LabelSet::from_iter([TypeId(2)]).to_multi_hot(4);
        assert_eq!(labeled, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn retain_in_drops_unkept_types() {
        let mut s = LabelSet::from_iter([TypeId(1), TypeId(2), TypeId(3)]);
        let keep = vec![false, true, false, true];
        s.retain_in(&keep);
        let ids: Vec<_> = s.iter().collect();
        assert_eq!(ids, vec![TypeId(1), TypeId(3)]);
        // Out-of-range ids are dropped too.
        let mut s = LabelSet::from_iter([TypeId(10)]);
        s.retain_in(&keep);
        assert!(s.is_empty());
    }

    #[test]
    fn intersection_len_counts_common_labels() {
        let a = LabelSet::from_iter([TypeId(1), TypeId(3), TypeId(5)]);
        let b = LabelSet::from_iter([TypeId(3), TypeId(5), TypeId(7)]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.intersection_len(&LabelSet::empty()), 0);
    }
}
