//! Deterministic seed derivation.
//!
//! Every randomized component in the reproduction (corpus generation,
//! sampling scans, weight initialization, MLM masking) derives its RNG from
//! a root seed through a labeled path, so experiments replay bit-for-bit
//! and sub-components stay independent of each other's draw counts.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Derives a child seed from `root` and a textual `label` using the
/// SplitMix64 finalizer over an FNV-1a hash of the label. Stable across
/// platforms and releases (no reliance on `std::hash`).
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(root ^ h)
}

/// One step of the SplitMix64 mixing function.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny PRNG whose state can be checkpointed.
///
/// [`StdRng`] hides its internal state, which makes it impossible to
/// snapshot a training loop mid-stream and resume it bit-identically.
/// `SplitMix64Rng` is the SplitMix64 generator — one `u64` of state,
/// advanced by the golden-ratio increment and finalized by
/// [`splitmix64`] — with that state exposed through serde, so saving
/// and restoring the struct resumes the stream exactly where it left
/// off. Statistical quality is ample for shuffling, subsampling, MLM
/// masking, and dropout; it is not a cryptographic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64Rng {
    state: u64,
}

impl SplitMix64Rng {
    /// Creates a generator from a seed. The seed is pre-mixed so nearby
    /// seeds do not yield correlated first draws.
    pub fn new(seed: u64) -> SplitMix64Rng {
        SplitMix64Rng { state: splitmix64(seed ^ 0xd1b5_4a32_d192_ed03) }
    }

    /// The raw stream position (diagnostics and tests).
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl RngCore for SplitMix64Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = splitmix64(self.state);
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        out
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A seeded [`StdRng`] for the labeled sub-component.
pub fn rng_for(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// A seeded [`StdRng`] for the `index`-th item of a labeled stream
/// (e.g. per-table generators that must not depend on generation order).
pub fn rng_for_indexed(root: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(derive_seed(root, label) ^ splitmix64(index)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(0, "corpus"), derive_seed(0, "corpus"));
        assert_eq!(derive_seed(42, "x"), derive_seed(42, "x"));
    }

    #[test]
    fn labels_decorrelate_streams() {
        assert_ne!(derive_seed(0, "corpus"), derive_seed(0, "weights"));
        assert_ne!(derive_seed(0, "a"), derive_seed(1, "a"));
    }

    #[test]
    fn indexed_rngs_differ_per_index() {
        let mut a = rng_for_indexed(7, "tables", 0);
        let mut b = rng_for_indexed(7, "tables", 1);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
        // Same index replays identically.
        let mut a2 = rng_for_indexed(7, "tables", 0);
        let va2: u64 = a2.gen();
        assert_eq!(va, va2);
    }

    #[test]
    fn splitmix_rng_replays_from_serialized_state() {
        let mut a = SplitMix64Rng::new(7);
        // Burn a few draws, snapshot, then diverge-and-restore.
        for _ in 0..5 {
            a.next_u64();
        }
        let snap = serde_json::to_string(&a).unwrap();
        let tail: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b: SplitMix64Rng = serde_json::from_str(&snap).unwrap();
        let replay: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn splitmix_rng_seeds_decorrelate_and_fill_bytes_is_total() {
        let va = SplitMix64Rng::new(1).next_u64();
        let vb = SplitMix64Rng::new(2).next_u64();
        assert_ne!(va, vb);
        let mut rng = SplitMix64Rng::new(3);
        let mut buf = [0u8; 13]; // non-multiple of 8 exercises the tail chunk
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // The shuffle adapter from the `rand` prelude must accept it.
        use rand::seq::SliceRandom;
        let mut order: Vec<u32> = (0..32).collect();
        order.shuffle(&mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "poor avalanche: {:064b}", a ^ b);
    }
}
