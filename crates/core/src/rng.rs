//! Deterministic seed derivation.
//!
//! Every randomized component in the reproduction (corpus generation,
//! sampling scans, weight initialization, MLM masking) derives its RNG from
//! a root seed through a labeled path, so experiments replay bit-for-bit
//! and sub-components stay independent of each other's draw counts.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from `root` and a textual `label` using the
/// SplitMix64 finalizer over an FNV-1a hash of the label. Stable across
/// platforms and releases (no reliance on `std::hash`).
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(root ^ h)
}

/// One step of the SplitMix64 mixing function.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded [`StdRng`] for the labeled sub-component.
pub fn rng_for(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

/// A seeded [`StdRng`] for the `index`-th item of a labeled stream
/// (e.g. per-table generators that must not depend on generation order).
pub fn rng_for_indexed(root: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix64(derive_seed(root, label) ^ splitmix64(index)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(0, "corpus"), derive_seed(0, "corpus"));
        assert_eq!(derive_seed(42, "x"), derive_seed(42, "x"));
    }

    #[test]
    fn labels_decorrelate_streams() {
        assert_ne!(derive_seed(0, "corpus"), derive_seed(0, "weights"));
        assert_ne!(derive_seed(0, "a"), derive_seed(1, "a"));
    }

    #[test]
    fn indexed_rngs_differ_per_index() {
        let mut a = rng_for_indexed(7, "tables", 0);
        let mut b = rng_for_indexed(7, "tables", 1);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
        // Same index replays identically.
        let mut a2 = rng_for_indexed(7, "tables", 0);
        let va2: u64 = a2.gen();
        assert_eq!(va, va2);
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "poor avalanche: {:064b}", a ^ b);
    }
}
