//! Logical tables, columns, cells, and the metadata consumed by Phase 1.
//!
//! The paper splits column information into textual metadata `M_t^c`
//! (names, comments), non-textual metadata `M_n^c` (data type, statistics,
//! histograms), and column content `D^c` (cell values). [`ColumnMeta`]
//! carries `M^c = (M_t^c, M_n^c)`; content lives in the simulated database
//! and is only materialized by Phase 2 scans.

use crate::histogram::Histogram;
use crate::labels::LabelSet;
use serde::{Deserialize, Serialize};

/// Identifier of a table within a database (dense per database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Identifier of a column within its table (ordinal position, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ColumnId {
    /// Owning table.
    pub table: TableId,
    /// Ordinal position within the table, 0-based.
    pub ordinal: u16,
}

impl ColumnId {
    /// Builds a column id from a table id and ordinal position.
    pub fn new(table: TableId, ordinal: u16) -> Self {
        ColumnId { table, ordinal }
    }
}

/// Raw (storage-level) data type of a column, as a database would report it
/// through `information_schema.columns.data_type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawType {
    /// Integer-valued column (`INT`, `BIGINT`, ...).
    Integer,
    /// Floating-point column (`FLOAT`, `DOUBLE`, `DECIMAL`).
    Float,
    /// Variable-length text (`VARCHAR`, `TEXT`).
    Text,
    /// Calendar date (`DATE`).
    Date,
    /// Timestamp with time (`DATETIME`, `TIMESTAMP`).
    Timestamp,
    /// Boolean flag (`BOOL`, `TINYINT(1)`).
    Boolean,
}

impl RawType {
    /// Stable token used when featurizing the raw type for the model input.
    pub fn token(self) -> &'static str {
        match self {
            RawType::Integer => "int",
            RawType::Float => "float",
            RawType::Text => "text",
            RawType::Date => "date",
            RawType::Timestamp => "timestamp",
            RawType::Boolean => "bool",
        }
    }

    /// All raw types, in their featurization order.
    pub const ALL: [RawType; 6] = [
        RawType::Integer,
        RawType::Float,
        RawType::Text,
        RawType::Date,
        RawType::Timestamp,
        RawType::Boolean,
    ];

    /// One-hot index of this raw type within [`RawType::ALL`].
    pub fn one_hot_index(self) -> usize {
        RawType::ALL.iter().position(|&t| t == self).expect("member of ALL")
    }
}

/// A single cell value. The simulated database stores typed cells; the
/// model consumes their textual rendering (the paper feeds cell text).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
}

impl Cell {
    /// Whether the cell is SQL NULL or empty text. The paper's reading
    /// strategy skips empty cells when collecting the first `n` values.
    pub fn is_empty(&self) -> bool {
        match self {
            Cell::Null => true,
            Cell::Text(s) => s.is_empty(),
            _ => false,
        }
    }

    /// Textual rendering used as model input.
    pub fn render(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v}"),
            Cell::Text(s) => s.clone(),
            Cell::Bool(b) => if *b { "true".into() } else { "false".into() },
        }
    }

    /// Numeric view of the cell, if it has one (used by histogram builds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(v) => Some(*v as f64),
            Cell::Float(v) => Some(*v),
            Cell::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }
}

/// Column-level statistics a database exposes through its catalog.
///
/// These are part of the non-textual metadata `M_n^c`; all fields are
/// optional because real databases only populate them after `ANALYZE`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values (NDV).
    pub ndv: Option<u64>,
    /// Fraction of NULL cells in `[0, 1]`.
    pub null_frac: Option<f64>,
    /// Minimum numeric value (numeric columns only).
    pub min: Option<f64>,
    /// Maximum numeric value (numeric columns only).
    pub max: Option<f64>,
    /// Mean rendered-text length of non-null cells.
    pub avg_len: Option<f64>,
}

/// Column metadata `M^c`: everything Phase 1 may consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Which column this metadata describes.
    pub id: ColumnId,
    /// Column name, as defined in the user schema (textual metadata).
    pub name: String,
    /// Optional column comment (textual metadata).
    pub comment: Option<String>,
    /// Raw storage type (non-textual metadata).
    pub raw_type: RawType,
    /// Whether the column is declared nullable (non-textual metadata).
    pub nullable: bool,
    /// Catalog statistics, if `ANALYZE` has run (non-textual metadata).
    pub stats: ColumnStats,
    /// Column histogram, if `ANALYZE TABLE ... UPDATE HISTOGRAM` has run.
    pub histogram: Option<Histogram>,
}

impl ColumnMeta {
    /// Concatenated textual metadata `M_t^c` (name plus comment).
    pub fn textual(&self) -> String {
        match &self.comment {
            Some(c) if !c.is_empty() => format!("{} {}", self.name, c),
            _ => self.name.clone(),
        }
    }
}

/// Table-level metadata: name and comment, shared by all columns of the
/// table when packing model input (the paper reserves 150 tokens for it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Which table this metadata describes.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Optional table comment (the reproduction maps page/section titles
    /// of the source corpus here, as the paper does for MySQL).
    pub comment: Option<String>,
    /// Number of rows currently stored.
    pub row_count: u64,
}

impl TableMeta {
    /// Concatenated textual table metadata.
    pub fn textual(&self) -> String {
        match &self.comment {
            Some(c) if !c.is_empty() => format!("{} {}", self.name, c),
            _ => self.name.clone(),
        }
    }
}

/// A fully materialized logical table: metadata, per-column metadata,
/// row-major content, and (for labeled corpora) ground-truth labels.
///
/// This is the unit the corpus generators emit and the unit loaded into
/// the simulated database. The detection framework itself never sees a
/// `Table` directly — it goes through the database connection like a real
/// cloud service would.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table-level metadata.
    pub meta: TableMeta,
    /// Per-column metadata, ordered by ordinal.
    pub columns: Vec<ColumnMeta>,
    /// Row-major cell storage; every row has `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
    /// Ground-truth semantic labels per column (empty set = background).
    pub labels: Vec<LabelSet>,
}

impl Table {
    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.rows.len()
    }

    /// Checks the internal consistency invariants of the table:
    /// label/column parity, uniform row width, and ordinal agreement.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::error::TasteError;
        if self.labels.len() != self.columns.len() {
            return Err(TasteError::shape(format!(
                "table {}: {} labels for {} columns",
                self.meta.name,
                self.labels.len(),
                self.columns.len()
            )));
        }
        for (i, col) in self.columns.iter().enumerate() {
            if col.id.ordinal as usize != i {
                return Err(TasteError::invalid(format!(
                    "table {}: column {} has ordinal {}",
                    self.meta.name, i, col.id.ordinal
                )));
            }
        }
        for (r, row) in self.rows.iter().enumerate() {
            if row.len() != self.columns.len() {
                return Err(TasteError::shape(format!(
                    "table {}: row {} has width {} (expected {})",
                    self.meta.name,
                    r,
                    row.len(),
                    self.columns.len()
                )));
            }
        }
        Ok(())
    }

    /// The first `n` non-empty cell renderings of column `ordinal`,
    /// looking at the supplied rows only (the paper's reading strategy:
    /// retrieve `m` rows, keep the first `n ≤ m` non-empty values).
    pub fn first_nonempty_values(&self, ordinal: usize, n: usize) -> Vec<String> {
        let mut out = Vec::with_capacity(n);
        for row in &self.rows {
            let cell = &row[ordinal];
            if !cell.is_empty() {
                out.push(cell.render());
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeId;

    fn mk_table() -> Table {
        let tid = TableId(7);
        Table {
            meta: TableMeta {
                id: tid,
                name: "orders".into(),
                comment: Some("sales orders".into()),
                row_count: 2,
            },
            columns: vec![
                ColumnMeta {
                    id: ColumnId::new(tid, 0),
                    name: "id".into(),
                    comment: None,
                    raw_type: RawType::Integer,
                    nullable: false,
                    stats: ColumnStats::default(),
                    histogram: None,
                },
                ColumnMeta {
                    id: ColumnId::new(tid, 1),
                    name: "city".into(),
                    comment: Some("ship-to city".into()),
                    raw_type: RawType::Text,
                    nullable: true,
                    stats: ColumnStats::default(),
                    histogram: None,
                },
            ],
            rows: vec![
                vec![Cell::Int(1), Cell::Null],
                vec![Cell::Int(2), Cell::Text("Shenzhen".into())],
            ],
            labels: vec![LabelSet::empty(), LabelSet::from_iter([TypeId(3)])],
        }
    }

    #[test]
    fn validate_accepts_consistent_table() {
        assert!(mk_table().validate().is_ok());
    }

    #[test]
    fn validate_rejects_ragged_rows() {
        let mut t = mk_table();
        t.rows[1].pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_label_mismatch() {
        let mut t = mk_table();
        t.labels.pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_ordinals() {
        let mut t = mk_table();
        t.columns[1].id.ordinal = 5;
        assert!(t.validate().is_err());
    }

    #[test]
    fn first_nonempty_skips_nulls_and_empties() {
        let t = mk_table();
        assert_eq!(t.first_nonempty_values(1, 10), vec!["Shenzhen".to_owned()]);
        assert_eq!(t.first_nonempty_values(0, 1), vec!["1".to_owned()]);
    }

    #[test]
    fn textual_metadata_concatenates_comment() {
        let t = mk_table();
        assert_eq!(t.meta.textual(), "orders sales orders");
        assert_eq!(t.columns[0].textual(), "id");
        assert_eq!(t.columns[1].textual(), "city ship-to city");
    }

    #[test]
    fn cell_rendering_and_numeric_views() {
        assert_eq!(Cell::Int(-4).render(), "-4");
        assert_eq!(Cell::Bool(true).render(), "true");
        assert_eq!(Cell::Null.render(), "");
        assert!(Cell::Null.is_empty());
        assert!(Cell::Text(String::new()).is_empty());
        assert!(!Cell::Int(0).is_empty());
        assert_eq!(Cell::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Cell::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn raw_type_one_hot_indices_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in RawType::ALL {
            assert!(seen.insert(t.one_hot_index()));
            assert!(!t.token().is_empty());
        }
        assert_eq!(seen.len(), 6);
    }
}
