//! Semantic types and the interning registry over the domain set `S`.

use crate::error::{Result, TasteError};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Dense integer handle for a semantic type inside a [`TypeRegistry`].
///
/// `TypeId(0)` is reserved for the *background* type (`type: null` in the
/// paper, §6.1.1): columns that carry no semantic type at all. Classifier
/// heads index their output units by `TypeId`, so ids are dense and stable
/// for the lifetime of a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The reserved background type (`type: null`).
    pub const NULL: TypeId = TypeId(0);

    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the background type.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// A semantic type: a named, domain-specific concept a column can denote
/// (e.g. `person.name`, `finance.credit_card_number`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemanticType {
    /// Dense id within the owning registry.
    pub id: TypeId,
    /// Canonical dotted name, `domain.concept` (e.g. `location.city`).
    pub name: String,
    /// The broad domain this type belongs to (`person`, `finance`, ...).
    pub domain: String,
}

impl SemanticType {
    /// The concept part of the dotted name (`city` for `location.city`).
    pub fn concept(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// Interning registry for the semantic type domain set `S`.
///
/// The registry always contains the background type `null` at id 0, so
/// `len() >= 1` and classifier output width equals `len()`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeRegistry {
    types: Vec<SemanticType>,
    #[serde(skip)]
    by_name: FxHashMap<String, TypeId>,
}

impl Default for TypeRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeRegistry {
    /// Creates a registry containing only the background type.
    pub fn new() -> Self {
        let mut reg = TypeRegistry {
            types: Vec::new(),
            by_name: FxHashMap::default(),
        };
        reg.types.push(SemanticType {
            id: TypeId::NULL,
            name: "null".to_owned(),
            domain: "background".to_owned(),
        });
        reg.by_name.insert("null".to_owned(), TypeId::NULL);
        reg
    }

    /// Registers a semantic type under `domain.concept`, returning its id.
    /// Registering the same name twice returns the existing id.
    pub fn register(&mut self, domain: &str, concept: &str) -> TypeId {
        let name = format!("{domain}.{concept}");
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.types.push(SemanticType {
            id,
            name,
            domain: domain.to_owned(),
        });
        id
    }

    /// Number of types in the registry, including the background type.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// A registry is never empty (the background type is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a type by dense id.
    pub fn get(&self, id: TypeId) -> Result<&SemanticType> {
        self.types
            .get(id.index())
            .ok_or_else(|| TasteError::not_found(format!("semantic type id {}", id.0)))
    }

    /// Looks up a type by its dotted name.
    pub fn by_name(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all types including the background type.
    pub fn iter(&self) -> impl Iterator<Item = &SemanticType> {
        self.types.iter()
    }

    /// Iterates over all *real* (non-background) types.
    pub fn iter_real(&self) -> impl Iterator<Item = &SemanticType> {
        self.types.iter().skip(1)
    }

    /// Rebuilds the name index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .types
            .iter()
            .map(|t| (t.name.clone(), t.id))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_starts_with_background_type() {
        let reg = TypeRegistry::new();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.by_name("null"), Some(TypeId::NULL));
        assert!(TypeId::NULL.is_null());
    }

    #[test]
    fn register_is_idempotent_and_dense() {
        let mut reg = TypeRegistry::new();
        let a = reg.register("person", "name");
        let b = reg.register("location", "city");
        let a2 = reg.register("person", "name");
        assert_eq!(a, a2);
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.get(b).unwrap().concept(), "city");
        assert_eq!(reg.get(b).unwrap().domain, "location");
    }

    #[test]
    fn unknown_lookup_errors() {
        let reg = TypeRegistry::new();
        assert!(reg.get(TypeId(42)).is_err());
        assert_eq!(reg.by_name("nope"), None);
    }

    #[test]
    fn iter_real_skips_background() {
        let mut reg = TypeRegistry::new();
        reg.register("person", "name");
        reg.register("person", "age");
        let real: Vec<_> = reg.iter_real().map(|t| t.name.clone()).collect();
        assert_eq!(real, vec!["person.name", "person.age"]);
        assert_eq!(reg.iter().count(), 3);
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let mut reg = TypeRegistry::new();
        reg.register("finance", "credit_card_number");
        let json = serde_json::to_string(&reg).unwrap();
        let mut back: TypeRegistry = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.by_name("finance.credit_card_number"), reg.by_name("finance.credit_card_number"));
    }
}
