//! # taste-core
//!
//! Shared domain vocabulary for the TASTE semantic type detection
//! reproduction (EDBT 2025).
//!
//! This crate defines the types every other crate in the workspace speaks:
//!
//! * [`SemanticType`] / [`TypeId`] / [`TypeRegistry`] — the domain set `S`
//!   of semantic types and an interning registry over it.
//! * [`table`] — logical tables, columns, and the metadata the paper's
//!   Phase 1 consumes ([`table::ColumnMeta`], [`table::TableMeta`]).
//! * [`histogram`] — equal-width / equal-depth column histograms, the
//!   optional statistics metadata of the *TASTE with histogram* variant.
//! * [`labels`] — multi-label admitted-type sets (`A^c` in the paper).
//! * [`metrics`] — micro / macro precision, recall, and F1 for the
//!   multi-label classification evaluation (Tables 3 and 4).
//! * [`rng`] — deterministic seed derivation so every experiment in the
//!   reproduction is replayable.
//! * [`outcome`] — per-table terminal outcomes of a detection batch
//!   ([`TableOutcome`]): completed, degraded, failed, panicked,
//!   timed-out, shed (with a [`ShedReason`]), rejected, or cancelled.
//! * [`checksum`] — CRC32C and torn-write-safe record framing for the
//!   crash-safety layer (verdict journal, latent-cache persistence).

#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod histogram;
pub mod labels;
pub mod metrics;
pub mod outcome;
pub mod rng;
pub mod table;
pub mod types;

pub use error::{Result, TasteError};
pub use histogram::{Histogram, HistogramKind};
pub use labels::LabelSet;
pub use metrics::{EvalAccumulator, EvalScores};
pub use outcome::{ShedReason, TableOutcome};
pub use table::{Cell, ColumnId, ColumnMeta, RawType, Table, TableId, TableMeta};
pub use types::{SemanticType, TypeId, TypeRegistry};
