//! CRC32C checksums and torn-write-safe record framing.
//!
//! The crash-safety layer persists state (the verdict journal, cached P1
//! latents) as append-only streams of self-validating records. Each
//! record is framed as
//!
//! ```text
//! [magic: u32 LE] [len: u32 LE] [len ^ LEN_GUARD: u32 LE] [crc32c(payload): u32 LE] [payload]
//! ```
//!
//! The duplicated, guard-XORed length lets a reader distinguish the two
//! failure modes that matter after a crash or bit-rot:
//!
//! * **Torn tail** — the process died mid-append, or the header itself is
//!   damaged. The length cannot be trusted, so decoding stops here and
//!   the caller truncates the stream at this offset.
//! * **Corrupt payload** — the header validates (magic and both length
//!   copies agree) but the payload fails its CRC. The record's extent is
//!   still known, so the caller can quarantine it and keep reading the
//!   records behind it.
//!
//! CRC32C (Castagnoli) is used over plain CRC32 for its better error
//! detection on short records; the implementation is a table-driven
//! software loop, deliberately dependency-free.

/// Framing magic: `"TSTE"` little-endian.
pub const RECORD_MAGIC: u32 = 0x4554_5354;

/// XOR guard for the duplicated length field.
const LEN_GUARD: u32 = 0x5A5A_5A5A;

/// Bytes of framing before each payload.
pub const RECORD_HEADER_LEN: usize = 16;

/// Upper bound on a single record's payload; a header whose validated
/// length exceeds this is treated as torn rather than allocated.
pub const MAX_RECORD_LEN: usize = 1 << 30;

const fn build_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    let poly = 0x82F6_3B78u32;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ poly } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_table();

/// CRC32C (Castagnoli) of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frames one payload into a self-validating record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(len ^ LEN_GUARD).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of decoding one record from the front of a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStep<'a> {
    /// A whole, checksum-valid record of `consumed` total bytes.
    Record {
        /// The validated payload.
        payload: &'a [u8],
        /// Total bytes consumed including framing.
        consumed: usize,
    },
    /// The header validates but the payload fails its CRC: skip
    /// `consumed` bytes and quarantine the record.
    CorruptPayload {
        /// Total bytes occupied by the corrupt record.
        consumed: usize,
    },
    /// Not a decodable record: the stream ends here (mid-write crash or a
    /// damaged header whose length cannot be trusted). Truncate from this
    /// offset.
    TornTail,
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

/// Decodes the record at the front of `buf`.
pub fn decode_record(buf: &[u8]) -> DecodeStep<'_> {
    if buf.len() < RECORD_HEADER_LEN {
        return DecodeStep::TornTail;
    }
    let magic = read_u32(buf, 0);
    let len = read_u32(buf, 4);
    let len_check = read_u32(buf, 8);
    let crc = read_u32(buf, 12);
    if magic != RECORD_MAGIC || len ^ LEN_GUARD != len_check || len as usize > MAX_RECORD_LEN {
        return DecodeStep::TornTail;
    }
    let total = RECORD_HEADER_LEN + len as usize;
    if buf.len() < total {
        return DecodeStep::TornTail;
    }
    let payload = &buf[RECORD_HEADER_LEN..total];
    if crc32c(payload) != crc {
        return DecodeStep::CorruptPayload { consumed: total };
    }
    DecodeStep::Record { payload, consumed: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_reference_vectors() {
        // The canonical check value for CRC32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // 32 zero bytes, RFC 3720 test vector.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 0xFF bytes, RFC 3720 test vector.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn roundtrip_single_record() {
        let rec = encode_record(b"hello journal");
        match decode_record(&rec) {
            DecodeStep::Record { payload, consumed } => {
                assert_eq!(payload, b"hello journal");
                assert_eq!(consumed, rec.len());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let rec = encode_record(b"");
        assert_eq!(
            decode_record(&rec),
            DecodeStep::Record { payload: b"", consumed: RECORD_HEADER_LEN }
        );
    }

    #[test]
    fn truncation_anywhere_is_a_torn_tail() {
        let rec = encode_record(b"some payload bytes");
        for cut in 0..rec.len() {
            assert_eq!(decode_record(&rec[..cut]), DecodeStep::TornTail, "cut at {cut}");
        }
    }

    #[test]
    fn payload_bitflip_is_quarantined_with_known_extent() {
        let mut rec = encode_record(b"verdicts for table 7");
        let total = rec.len();
        rec[RECORD_HEADER_LEN + 3] ^= 0x40;
        assert_eq!(decode_record(&rec), DecodeStep::CorruptPayload { consumed: total });
    }

    #[test]
    fn header_bitflip_is_a_torn_tail() {
        for byte in 0..12 {
            let mut rec = encode_record(b"payload");
            rec[byte] ^= 0x01;
            assert_eq!(decode_record(&rec), DecodeStep::TornTail, "flip at {byte}");
        }
    }

    #[test]
    fn stream_of_records_decodes_in_order() {
        let mut stream = Vec::new();
        for i in 0..5u8 {
            stream.extend_from_slice(&encode_record(&[i; 7]));
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while at < stream.len() {
            match decode_record(&stream[at..]) {
                DecodeStep::Record { payload, consumed } => {
                    seen.push(payload[0]);
                    at += consumed;
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn insane_length_is_rejected_not_allocated() {
        let mut rec = encode_record(b"x");
        let bad_len = (MAX_RECORD_LEN as u32) + 1;
        rec[4..8].copy_from_slice(&bad_len.to_le_bytes());
        rec[8..12].copy_from_slice(&(bad_len ^ LEN_GUARD).to_le_bytes());
        assert_eq!(decode_record(&rec), DecodeStep::TornTail);
    }
}
