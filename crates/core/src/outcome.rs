//! Per-table terminal outcomes of a detection batch.
//!
//! A production batch spanning thousands of tables must survive one
//! table's bad data (a panic inside a stage), a wedged stage (a watchdog
//! deadline), or an operator-initiated halt. Every table therefore ends
//! in exactly one [`TableOutcome`], and the engine guarantees the batch
//! report contains one entry per requested table regardless of how each
//! one ended.
//!
//! State diagram (stages advance left to right; hazards exit downward):
//!
//! ```text
//!           (admission gate full)---------------------→ Rejected
//! P1Prep → P1Infer → P2Prep → P2Infer → Completed
//!   |         |        |         |
//!   |         |        +--(scan budget exhausted)----→ Degraded
//!   |         |        +--(overload: P2 shed)--------→ Shed
//!   +--(P1 budget exhausted)------------------------→ Failed
//!   +--(stage panic caught)-------------------------→ Panicked
//!   +--(stage deadline exceeded)--------------------→ TimedOut
//!   +--(batch deadline / halt)---------------------→ Cancelled
//! ```
//!
//! `Completed`, `Degraded`, `Shed`, `Failed`, `Panicked`, and `TimedOut`
//! are *final*: the table's verdicts (possibly partial or empty) are
//! settled and may be journaled. `Cancelled` and `Rejected` are *not*
//! final — the table never got its turn (cancellation) or never got in
//! the door (admission rejection under overload), so a resumed run must
//! process it again.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why the overload controller shed a table's Phase-2 work.
///
/// Shedding is the middle rung of the degradation ladder: cheaper than
/// rejecting the table outright (the P1 metadata-only verdicts stand),
/// more drastic than plain retry/degrade (the engine *chose* not to run
/// P2, no fault occurred). The reason is recorded per table so operators
/// can tell queue pressure from deadline pressure from brownout policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The stage-queue latency signal was above target (CoDel-style
    /// sustained standing queue): P2 was dropped to drain the queue.
    QueuePressure,
    /// The table's remaining deadline budget could not cover the
    /// projected P2 cost: finishing on time beat finishing completely.
    DeadlineRisk,
    /// The engine was in brownout mode, which forces P2 off for new
    /// admissions until an exit probe succeeds.
    Brownout,
}

impl ShedReason {
    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueuePressure => "queue-pressure",
            ShedReason::DeadlineRisk => "deadline-risk",
            ShedReason::Brownout => "brownout",
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How one table's pipeline ended.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableOutcome {
    /// All stages ran; final verdicts are the full two-phase result.
    #[default]
    Completed,
    /// P2 degraded (scan budget exhausted); verdicts are P1-only for the
    /// affected columns.
    Degraded,
    /// P1 failed outright; the table is reported with empty verdicts.
    Failed,
    /// A stage panicked; the panic was caught at the stage boundary and
    /// the rest of the batch was unaffected.
    Panicked {
        /// The stage that panicked (e.g. `"P1Infer"`).
        stage: String,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// A stage exceeded its watchdog deadline. Verdicts are P1-only when
    /// Phase 1 had already completed, empty otherwise.
    TimedOut {
        /// The stage that exceeded its deadline.
        stage: String,
    },
    /// The overload controller shed this table's Phase-2 work; verdicts
    /// are the P1 metadata-only verdicts for every column. Final: the
    /// engine decided P1 was good enough under pressure, and re-running
    /// on resume would re-apply the load that was being shed.
    Shed {
        /// Why P2 was shed for this table.
        reason: ShedReason,
    },
    /// The admission gate refused the table (in-flight budget and
    /// admission queue both full). Not a final verdict: the table never
    /// entered the pipeline, so resume (or a caller backing off) must
    /// submit it again.
    Rejected,
    /// The batch was cancelled (batch deadline or halt) before this table
    /// finished. Not a final verdict: resume re-runs the table.
    Cancelled,
}

impl TableOutcome {
    /// Whether this outcome settles the table's verdicts for good: final
    /// outcomes are journaled and skipped on resume; `Cancelled` and
    /// `Rejected` are not.
    pub fn is_final(&self) -> bool {
        !matches!(self, TableOutcome::Cancelled | TableOutcome::Rejected)
    }

    /// Whether the table's verdicts carry the full two-phase result (as
    /// opposed to partial, empty, or absent verdicts).
    pub fn is_clean(&self) -> bool {
        matches!(self, TableOutcome::Completed)
    }

    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            TableOutcome::Completed => "completed",
            TableOutcome::Degraded => "degraded",
            TableOutcome::Failed => "failed",
            TableOutcome::Panicked { .. } => "panicked",
            TableOutcome::TimedOut { .. } => "timed-out",
            TableOutcome::Shed { .. } => "shed",
            TableOutcome::Rejected => "rejected",
            TableOutcome::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for TableOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableOutcome::Panicked { stage, payload } => {
                write!(f, "panicked at {stage}: {payload}")
            }
            TableOutcome::TimedOut { stage } => write!(f, "timed out at {stage}"),
            TableOutcome::Shed { reason } => write!(f, "shed ({reason})"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finality_partitions_outcomes() {
        assert!(TableOutcome::Completed.is_final());
        assert!(TableOutcome::Degraded.is_final());
        assert!(TableOutcome::Failed.is_final());
        assert!(TableOutcome::Panicked { stage: "P1Infer".into(), payload: "boom".into() }.is_final());
        assert!(TableOutcome::TimedOut { stage: "P2Prep".into() }.is_final());
        assert!(TableOutcome::Shed { reason: ShedReason::QueuePressure }.is_final());
        assert!(!TableOutcome::Rejected.is_final());
        assert!(!TableOutcome::Cancelled.is_final());
    }

    #[test]
    fn only_completed_is_clean() {
        assert!(TableOutcome::Completed.is_clean());
        assert!(!TableOutcome::Degraded.is_clean());
        assert!(!TableOutcome::Shed { reason: ShedReason::Brownout }.is_clean());
        assert!(!TableOutcome::Rejected.is_clean());
        assert!(!TableOutcome::Cancelled.is_clean());
    }

    #[test]
    fn display_includes_stage_context() {
        let p = TableOutcome::Panicked { stage: "P1Infer".into(), payload: "index oob".into() };
        assert_eq!(p.to_string(), "panicked at P1Infer: index oob");
        assert_eq!(TableOutcome::TimedOut { stage: "P2Prep".into() }.to_string(), "timed out at P2Prep");
        assert_eq!(TableOutcome::Completed.to_string(), "completed");
        assert_eq!(TableOutcome::default(), TableOutcome::Completed);
        assert_eq!(
            TableOutcome::Shed { reason: ShedReason::DeadlineRisk }.to_string(),
            "shed (deadline-risk)"
        );
        assert_eq!(TableOutcome::Rejected.to_string(), "rejected");
        assert_eq!(ShedReason::QueuePressure.to_string(), "queue-pressure");
    }

    #[test]
    fn serde_roundtrip() {
        let outcomes = vec![
            TableOutcome::Completed,
            TableOutcome::Degraded,
            TableOutcome::Failed,
            TableOutcome::Panicked { stage: "P2Infer".into(), payload: "nan".into() },
            TableOutcome::TimedOut { stage: "P1Prep".into() },
            TableOutcome::Shed { reason: ShedReason::QueuePressure },
            TableOutcome::Shed { reason: ShedReason::DeadlineRisk },
            TableOutcome::Shed { reason: ShedReason::Brownout },
            TableOutcome::Rejected,
            TableOutcome::Cancelled,
        ];
        let json = serde_json::to_string(&outcomes).unwrap();
        let back: Vec<TableOutcome> = serde_json::from_str(&json).unwrap();
        assert_eq!(outcomes, back);
    }
}
