//! Per-table terminal outcomes of a detection batch.
//!
//! A production batch spanning thousands of tables must survive one
//! table's bad data (a panic inside a stage), a wedged stage (a watchdog
//! deadline), or an operator-initiated halt. Every table therefore ends
//! in exactly one [`TableOutcome`], and the engine guarantees the batch
//! report contains one entry per requested table regardless of how each
//! one ended.
//!
//! State diagram (stages advance left to right; hazards exit downward):
//!
//! ```text
//! P1Prep → P1Infer → P2Prep → P2Infer → Completed
//!   |         |        |         |
//!   |         |        +--(scan budget exhausted)----→ Degraded
//!   +--(P1 budget exhausted)------------------------→ Failed
//!   +--(stage panic caught)-------------------------→ Panicked
//!   +--(stage deadline exceeded)--------------------→ TimedOut
//!   +--(batch deadline / halt)---------------------→ Cancelled
//! ```
//!
//! `Completed`, `Degraded`, `Failed`, `Panicked`, and `TimedOut` are
//! *final*: the table's verdicts (possibly partial or empty) are settled
//! and may be journaled. `Cancelled` is *not* final — the table never got
//! its turn, so a resumed run must process it again.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How one table's pipeline ended.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableOutcome {
    /// All stages ran; final verdicts are the full two-phase result.
    #[default]
    Completed,
    /// P2 degraded (scan budget exhausted); verdicts are P1-only for the
    /// affected columns.
    Degraded,
    /// P1 failed outright; the table is reported with empty verdicts.
    Failed,
    /// A stage panicked; the panic was caught at the stage boundary and
    /// the rest of the batch was unaffected.
    Panicked {
        /// The stage that panicked (e.g. `"P1Infer"`).
        stage: String,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// A stage exceeded its watchdog deadline. Verdicts are P1-only when
    /// Phase 1 had already completed, empty otherwise.
    TimedOut {
        /// The stage that exceeded its deadline.
        stage: String,
    },
    /// The batch was cancelled (batch deadline or halt) before this table
    /// finished. Not a final verdict: resume re-runs the table.
    Cancelled,
}

impl TableOutcome {
    /// Whether this outcome settles the table's verdicts for good: final
    /// outcomes are journaled and skipped on resume, `Cancelled` is not.
    pub fn is_final(&self) -> bool {
        !matches!(self, TableOutcome::Cancelled)
    }

    /// Whether the table's verdicts carry the full two-phase result (as
    /// opposed to partial, empty, or absent verdicts).
    pub fn is_clean(&self) -> bool {
        matches!(self, TableOutcome::Completed)
    }

    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            TableOutcome::Completed => "completed",
            TableOutcome::Degraded => "degraded",
            TableOutcome::Failed => "failed",
            TableOutcome::Panicked { .. } => "panicked",
            TableOutcome::TimedOut { .. } => "timed-out",
            TableOutcome::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for TableOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableOutcome::Panicked { stage, payload } => {
                write!(f, "panicked at {stage}: {payload}")
            }
            TableOutcome::TimedOut { stage } => write!(f, "timed out at {stage}"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finality_partitions_outcomes() {
        assert!(TableOutcome::Completed.is_final());
        assert!(TableOutcome::Degraded.is_final());
        assert!(TableOutcome::Failed.is_final());
        assert!(TableOutcome::Panicked { stage: "P1Infer".into(), payload: "boom".into() }.is_final());
        assert!(TableOutcome::TimedOut { stage: "P2Prep".into() }.is_final());
        assert!(!TableOutcome::Cancelled.is_final());
    }

    #[test]
    fn only_completed_is_clean() {
        assert!(TableOutcome::Completed.is_clean());
        assert!(!TableOutcome::Degraded.is_clean());
        assert!(!TableOutcome::Cancelled.is_clean());
    }

    #[test]
    fn display_includes_stage_context() {
        let p = TableOutcome::Panicked { stage: "P1Infer".into(), payload: "index oob".into() };
        assert_eq!(p.to_string(), "panicked at P1Infer: index oob");
        assert_eq!(TableOutcome::TimedOut { stage: "P2Prep".into() }.to_string(), "timed out at P2Prep");
        assert_eq!(TableOutcome::Completed.to_string(), "completed");
        assert_eq!(TableOutcome::default(), TableOutcome::Completed);
    }

    #[test]
    fn serde_roundtrip() {
        let outcomes = vec![
            TableOutcome::Completed,
            TableOutcome::Degraded,
            TableOutcome::Failed,
            TableOutcome::Panicked { stage: "P2Infer".into(), payload: "nan".into() },
            TableOutcome::TimedOut { stage: "P1Prep".into() },
            TableOutcome::Cancelled,
        ];
        let json = serde_json::to_string(&outcomes).unwrap();
        let back: Vec<TableOutcome> = serde_json::from_str(&json).unwrap();
        assert_eq!(outcomes, back);
    }
}
